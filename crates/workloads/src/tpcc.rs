//! A TPC-C subset: NewOrder, Payment and OrderStatus.
//!
//! The paper uses TPC-C only for the page-latch profile of Figure 2 (its
//! baselines hit none of the targeted bottlenecks on TPC-C), so this module
//! implements the three transactions that dominate the standard mix and the
//! tables they touch.  Key encodings pack the composite TPC-C keys into 64
//! bits, proportional to the warehouse id so per-table partitionings align;
//! the item table is partitioned by item id and reached through its own
//! actions (it is the classic non-warehouse-aligned access).

use std::sync::atomic::{AtomicU64, Ordering};

use plp_core::{Action, ActionOutput, Database, EngineError, TableId, TableSpec, TransactionPlan};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::fields;
use crate::Workload;

pub const WAREHOUSE: TableId = TableId(0);
pub const DISTRICT: TableId = TableId(1);
pub const CUSTOMER: TableId = TableId(2);
pub const ITEM: TableId = TableId(3);
pub const STOCK: TableId = TableId(4);
pub const ORDERS: TableId = TableId(5);
pub const ORDER_LINE: TableId = TableId(6);

pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
pub const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
pub const ITEMS: u64 = 100_000;
/// Order slots reserved per district.
pub const ORDERS_PER_DISTRICT: u64 = 1 << 21;
pub const MAX_ORDER_LINES: u64 = 15;

pub fn district_key(w: u64, d: u64) -> u64 {
    w * DISTRICTS_PER_WAREHOUSE + d
}

pub fn customer_key(w: u64, d: u64, c: u64) -> u64 {
    district_key(w, d) * CUSTOMERS_PER_DISTRICT + c
}

pub fn stock_key(w: u64, i: u64) -> u64 {
    w * ITEMS + i
}

pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
    district_key(w, d) * ORDERS_PER_DISTRICT + o
}

pub fn order_line_key(w: u64, d: u64, o: u64, ol: u64) -> u64 {
    order_key(w, d, o) * MAX_ORDER_LINES + ol
}

/// Record field offsets shared by several tables.
pub mod off {
    /// year-to-date / balance style accumulator.
    pub const YTD: usize = 0;
    /// district next order id.
    pub const NEXT_O_ID: usize = 8;
    /// stock quantity.
    pub const QUANTITY: usize = 8;
    /// item price.
    pub const PRICE: usize = 8;
}

const RECORD_SIZE: usize = 96;

/// The TPC-C workload generator (NewOrder 45%, Payment 43%, OrderStatus 12%).
pub struct Tpcc {
    warehouses: u64,
    /// Scale-down factor for loaded customers/items/stock so small experiments
    /// stay fast while keeping the same access shape.
    load_items: u64,
    load_customers: u64,
    next_order: AtomicU64,
}

impl Tpcc {
    pub fn new(warehouses: u64) -> Self {
        Self {
            warehouses: warehouses.max(1),
            load_items: ITEMS.min(10_000),
            load_customers: CUSTOMERS_PER_DISTRICT.min(300),
            next_order: AtomicU64::new(1),
        }
    }

    /// Scale the loaded item/customer counts (the key *encodings* keep the
    /// full TPC-C key space so partition alignment is unaffected).
    pub fn with_scale(mut self, items: u64, customers_per_district: u64) -> Self {
        self.load_items = items.clamp(100, ITEMS);
        self.load_customers = customers_per_district.clamp(10, CUSTOMERS_PER_DISTRICT);
        self
    }

    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }

    fn record(seed: u64) -> Vec<u8> {
        let mut r = vec![0u8; RECORD_SIZE];
        fields::set_u64(&mut r, off::YTD, 10_000);
        fields::set_u64(&mut r, 8, seed);
        r
    }

    /// NewOrder: read warehouse/customer, bump the district's next order id,
    /// read the items, update stock, then insert the order and its lines.
    pub fn new_order(
        &self,
        w: u64,
        d: u64,
        c: u64,
        items: Vec<(u64, u64)>, // (item id, quantity)
    ) -> TransactionPlan {
        let d_key = district_key(w, d);
        let c_key = customer_key(w, d, c % self.load_customers);
        let o_id = self.next_order.fetch_add(1, Ordering::Relaxed) % ORDERS_PER_DISTRICT;
        let item_keys: Vec<u64> = items.iter().map(|(i, _)| *i % self.load_items).collect();
        let quantities: Vec<u64> = items.iter().map(|(_, q)| *q).collect();

        // Stage 1: warehouse + district + customer reads/updates and the item
        // price lookups (each item is its own action on the item partition).
        let mut actions = vec![Action::new(DISTRICT, d_key, move |ctx| {
            let _w = ctx.read(WAREHOUSE, w)?;
            let _c = ctx.read(CUSTOMER, c_key)?;
            let mut next = 0;
            ctx.update(DISTRICT, d_key, &mut |r| {
                next = fields::get_u64(r, off::NEXT_O_ID);
                fields::set_u64(r, off::NEXT_O_ID, next + 1);
            })?;
            Ok(ActionOutput::with_values(vec![next]))
        })];
        for &i in &item_keys {
            actions.push(Action::new(ITEM, i, move |ctx| {
                let row = ctx
                    .read(ITEM, i)?
                    .ok_or_else(|| EngineError::Abort("missing item".into()))?;
                Ok(ActionOutput::with_values(vec![fields::get_u64(
                    &row,
                    off::PRICE,
                )]))
            }));
        }

        let load_items = self.load_items;
        TransactionPlan::parallel(actions).followed_by(move |outputs| {
            let prices: Vec<u64> = outputs
                .iter()
                .skip(1)
                .flat_map(|o| o.values.clone())
                .collect();
            // Stage 2: stock updates + order/order-line inserts.
            let mut actions = Vec::new();
            for (idx, &i) in item_keys.iter().enumerate() {
                let s_key = stock_key(w, i % load_items);
                let qty = quantities.get(idx).copied().unwrap_or(1);
                actions.push(Action::new(STOCK, s_key, move |ctx| {
                    ctx.update(STOCK, s_key, &mut |r| {
                        let q = fields::get_u64(r, off::QUANTITY);
                        let newq = if q > qty + 10 { q - qty } else { q + 91 - qty };
                        fields::set_u64(r, off::QUANTITY, newq);
                    })?;
                    Ok(ActionOutput::empty())
                }));
            }
            let o_key = order_key(w, d, o_id);
            let n_lines = item_keys.len() as u64;
            let total: u64 = prices.iter().sum();
            actions.push(Action::new(ORDERS, o_key, move |ctx| {
                let mut rec = Tpcc::record(o_key);
                fields::set_u64(&mut rec, 16, n_lines);
                fields::set_u64(&mut rec, 24, total);
                match ctx.insert(ORDERS, o_key, &rec, None) {
                    Ok(()) | Err(EngineError::DuplicateKey { .. }) => {}
                    Err(e) => return Err(e),
                }
                for ol in 0..n_lines {
                    let ol_key = order_line_key(w, d, o_id, ol);
                    let rec = Tpcc::record(ol_key);
                    match ctx.insert(ORDER_LINE, ol_key, &rec, None) {
                        Ok(()) | Err(EngineError::DuplicateKey { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(ActionOutput::empty())
            }));
            TransactionPlan::parallel(actions)
        })
    }

    /// Payment: update warehouse, district and customer balances.
    pub fn payment(&self, w: u64, d: u64, c: u64, amount: u64) -> TransactionPlan {
        let d_key = district_key(w, d);
        let c_key = customer_key(w, d, c % self.load_customers);
        TransactionPlan::parallel(vec![
            Action::new(WAREHOUSE, w, move |ctx| {
                ctx.update(WAREHOUSE, w, &mut |r| {
                    fields::add_u64(r, off::YTD, amount as i64)
                })?;
                Ok(ActionOutput::empty())
            }),
            Action::new(DISTRICT, d_key, move |ctx| {
                ctx.update(DISTRICT, d_key, &mut |r| {
                    fields::add_u64(r, off::YTD, amount as i64)
                })?;
                Ok(ActionOutput::empty())
            }),
            Action::new(CUSTOMER, c_key, move |ctx| {
                ctx.update(CUSTOMER, c_key, &mut |r| {
                    fields::add_u64(r, off::YTD, -(amount as i64))
                })?;
                Ok(ActionOutput::empty())
            }),
        ])
    }

    /// OrderStatus: read a customer and scan their most recent order lines.
    pub fn order_status(&self, w: u64, d: u64, c: u64) -> TransactionPlan {
        let c_key = customer_key(w, d, c % self.load_customers);
        TransactionPlan::single(Action::new(CUSTOMER, c_key, move |ctx| {
            let mut out = ActionOutput::empty();
            if let Some(row) = ctx.read(CUSTOMER, c_key)? {
                out.rows.push(row);
            }
            let lo = order_key(w, d, 0);
            let hi = order_key(w, d, 8);
            for (_, row) in ctx.range_read(ORDERS, lo, hi)? {
                out.rows.push(row);
            }
            Ok(out)
        }))
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn schema(&self) -> Vec<TableSpec> {
        let w = self.warehouses;
        vec![
            TableSpec::new(0, "warehouse", w),
            TableSpec::new(1, "district", w * DISTRICTS_PER_WAREHOUSE)
                .with_granularity(DISTRICTS_PER_WAREHOUSE)
                .aligned_with(WAREHOUSE),
            TableSpec::new(
                2,
                "customer",
                w * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT,
            )
            .with_granularity(DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT)
            .aligned_with(WAREHOUSE),
            // `item` is routed by its own key space and deliberately declares
            // no alignment: it must never be co-repartitioned with the
            // warehouse group (the old ratio inference could not express
            // this).
            TableSpec::new(3, "item", ITEMS),
            TableSpec::new(4, "stock", w * ITEMS)
                .with_granularity(ITEMS)
                .aligned_with(WAREHOUSE),
            TableSpec::new(
                5,
                "orders",
                w * DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT,
            )
            .with_granularity(DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT)
            .aligned_with(WAREHOUSE),
            TableSpec::new(
                6,
                "order_line",
                w * DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT * MAX_ORDER_LINES,
            )
            .with_granularity(DISTRICTS_PER_WAREHOUSE * ORDERS_PER_DISTRICT * MAX_ORDER_LINES)
            .aligned_with(WAREHOUSE),
        ]
    }

    fn load(&self, db: &Database) -> Result<(), EngineError> {
        for i in 0..self.load_items {
            db.load_record(ITEM, i, &Self::record(i), None)?;
        }
        for w in 0..self.warehouses {
            db.load_record(WAREHOUSE, w, &Self::record(w), None)?;
            for i in 0..self.load_items {
                db.load_record(STOCK, stock_key(w, i), &Self::record(i), None)?;
            }
            for d in 0..DISTRICTS_PER_WAREHOUSE {
                db.load_record(DISTRICT, district_key(w, d), &Self::record(d), None)?;
                for c in 0..self.load_customers {
                    db.load_record(CUSTOMER, customer_key(w, d, c), &Self::record(c), None)?;
                }
            }
        }
        Ok(())
    }

    fn next_transaction(&self, rng: &mut ChaCha8Rng) -> TransactionPlan {
        let w = rng.gen_range(0..self.warehouses);
        let d = rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let c = rng.gen_range(0..self.load_customers);
        match rng.gen_range(0..100u32) {
            0..=44 => {
                let n = rng.gen_range(5..=10usize);
                let items = (0..n)
                    .map(|_| (rng.gen_range(0..self.load_items), rng.gen_range(1..5)))
                    .collect();
                self.new_order(w, d, c, items)
            }
            45..=87 => self.payment(w, d, c, rng.gen_range(1..5_000)),
            _ => self.order_status(w, d, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_encodings_nest() {
        assert_eq!(district_key(2, 3), 23);
        assert!(customer_key(2, 3, 10) > customer_key(2, 3, 9));
        assert!(order_line_key(1, 1, 5, 14) < order_line_key(1, 1, 6, 0));
        assert!(stock_key(0, ITEMS - 1) < stock_key(1, 0));
    }

    #[test]
    fn mix_produces_staged_new_orders() {
        let w = Tpcc::new(2).with_scale(500, 50);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let staged = (0..100)
            .filter(|_| w.next_transaction(&mut rng).then.is_some())
            .count();
        assert!(staged > 20, "NewOrder should be ~45% of the mix");
    }
}
