//! The TPC-B benchmark (account update).
//!
//! TPC-B stresses small hot tables: every transaction updates one account,
//! its teller, its branch, and appends a history row.  Branch and teller rows
//! are few and hot; without padding several of them share a heap page, which
//! is exactly the *false sharing* scenario of Figure 7 — the conventional,
//! logical-only and PLP-Regular designs latch those heap pages and contend,
//! while PLP-Partition/PLP-Leaf place each partition's rows on their own pages
//! and are immune.
//!
//! Key encodings keep every table's key space proportional to the branch id so
//! the per-table uniform partitionings align.

use std::sync::atomic::{AtomicU64, Ordering};

use plp_core::{Action, ActionOutput, Database, EngineError, TableId, TableSpec, TransactionPlan};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::fields;
use crate::Workload;

pub const BRANCH: TableId = TableId(0);
pub const TELLER: TableId = TableId(1);
pub const ACCOUNT: TableId = TableId(2);
pub const HISTORY: TableId = TableId(3);

pub const TELLERS_PER_BRANCH: u64 = 10;
pub const ACCOUNTS_PER_BRANCH: u64 = 10_000;
/// History rows are keyed per branch: `branch * HISTORY_SLOTS + seq`.
pub const HISTORY_SLOTS: u64 = 1 << 24;

/// Balance field offset shared by branch/teller/account records.
pub const BALANCE_OFFSET: usize = 0;
const SMALL_RECORD: usize = 96;
/// Padded record size used when the engine config enables padding (one record
/// per 8 KiB page, the classic false-sharing workaround).
pub const PADDED_RECORD: usize = 7_800;

pub fn teller_key(branch: u64, teller: u64) -> u64 {
    branch * TELLERS_PER_BRANCH + teller
}

pub fn account_key(branch: u64, account: u64) -> u64 {
    branch * ACCOUNTS_PER_BRANCH + account
}

/// The TPC-B workload generator.
pub struct TpcB {
    branches: u64,
    history_seq: AtomicU64,
}

impl TpcB {
    pub fn new(branches: u64) -> Self {
        Self {
            branches: branches.max(1),
            history_seq: AtomicU64::new(0),
        }
    }

    pub fn branches(&self) -> u64 {
        self.branches
    }

    fn record(db: &Database, seed: u64) -> Vec<u8> {
        let mut r = vec![0u8; SMALL_RECORD];
        fields::set_u64(&mut r, BALANCE_OFFSET, 1_000_000);
        fields::set_u64(&mut r, 8, seed);
        db.maybe_pad(r, PADDED_RECORD)
    }

    /// The TPC-B account-update transaction as a plan: three balance updates
    /// plus a history insert, decomposed per table (all actions route to the
    /// branch's partition).
    pub fn account_update(
        &self,
        branch: u64,
        teller: u64,
        account: u64,
        delta: i64,
    ) -> TransactionPlan {
        let t_key = teller_key(branch, teller);
        let a_key = account_key(branch, account);
        let h_key = branch * HISTORY_SLOTS
            + (self.history_seq.fetch_add(1, Ordering::Relaxed) % HISTORY_SLOTS);
        TransactionPlan::parallel(vec![
            Action::new(ACCOUNT, a_key, move |ctx| {
                let mut balance = 0;
                ctx.update(ACCOUNT, a_key, &mut |r| {
                    fields::add_u64(r, BALANCE_OFFSET, delta);
                    balance = fields::get_u64(r, BALANCE_OFFSET);
                })?;
                Ok(ActionOutput::with_values(vec![balance]))
            }),
            Action::new(TELLER, t_key, move |ctx| {
                ctx.update(TELLER, t_key, &mut |r| {
                    fields::add_u64(r, BALANCE_OFFSET, delta);
                })?;
                Ok(ActionOutput::empty())
            }),
            Action::new(BRANCH, branch, move |ctx| {
                ctx.update(BRANCH, branch, &mut |r| {
                    fields::add_u64(r, BALANCE_OFFSET, delta);
                })?;
                Ok(ActionOutput::empty())
            }),
            Action::new(HISTORY, h_key, move |ctx| {
                let mut rec = vec![0u8; 56];
                fields::set_u64(&mut rec, 0, a_key);
                fields::set_u64(&mut rec, 8, t_key);
                fields::set_u64(&mut rec, 16, branch);
                fields::set_u64(&mut rec, 24, delta as u64);
                match ctx.insert(HISTORY, h_key, &rec, None) {
                    Ok(()) | Err(EngineError::DuplicateKey { .. }) => Ok(ActionOutput::empty()),
                    Err(e) => Err(e),
                }
            }),
        ])
    }
}

impl Workload for TpcB {
    fn name(&self) -> &'static str {
        "TPC-B"
    }

    fn schema(&self) -> Vec<TableSpec> {
        let b = self.branches;
        vec![
            TableSpec::new(0, "branch", b),
            TableSpec::new(1, "teller", b * TELLERS_PER_BRANCH)
                .with_granularity(TELLERS_PER_BRANCH)
                .aligned_with(BRANCH),
            TableSpec::new(2, "account", b * ACCOUNTS_PER_BRANCH)
                .with_granularity(ACCOUNTS_PER_BRANCH)
                .aligned_with(BRANCH),
            TableSpec::new(3, "history", b * HISTORY_SLOTS)
                .with_granularity(HISTORY_SLOTS)
                .aligned_with(BRANCH),
        ]
    }

    fn load(&self, db: &Database) -> Result<(), EngineError> {
        for branch in 0..self.branches {
            db.load_record(BRANCH, branch, &Self::record(db, branch), None)?;
            for t in 0..TELLERS_PER_BRANCH {
                db.load_record(TELLER, teller_key(branch, t), &Self::record(db, t), None)?;
            }
            for a in 0..ACCOUNTS_PER_BRANCH {
                db.load_record(ACCOUNT, account_key(branch, a), &Self::record(db, a), None)?;
            }
        }
        Ok(())
    }

    fn next_transaction(&self, rng: &mut ChaCha8Rng) -> TransactionPlan {
        let branch = rng.gen_range(0..self.branches);
        let teller = rng.gen_range(0..TELLERS_PER_BRANCH);
        let account = rng.gen_range(0..ACCOUNTS_PER_BRANCH);
        let delta = rng.gen_range(-5_000i64..5_000);
        self.account_update(branch, teller, account, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn keys_align_with_branch_partitioning() {
        assert_eq!(teller_key(3, 2), 32);
        assert_eq!(account_key(3, 17), 30_017);
        // All keys of branch 3 fall into the same quarter of their key space
        // when partitioned into 4.
        let branches = 4u64;
        let part = |key: u64, space: u64| key * branches / space;
        assert_eq!(part(3, branches), 3);
        assert_eq!(part(teller_key(3, 9), branches * TELLERS_PER_BRANCH), 3);
        assert_eq!(
            part(
                account_key(3, ACCOUNTS_PER_BRANCH - 1),
                branches * ACCOUNTS_PER_BRANCH
            ),
            3
        );
    }

    #[test]
    fn plan_shape() {
        let w = TpcB::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let plan = w.next_transaction(&mut rng);
        assert_eq!(plan.action_count(), 4);
        assert!(plan.then.is_none());
    }
}
