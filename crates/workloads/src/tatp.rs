//! The TATP (Telecom Application Transaction Processing) benchmark.
//!
//! Schema (key encodings pack the composite TATP keys into 64 bits so that
//! every table's key space is proportional to the subscriber id — this keeps
//! the uniform range partitioning of all tables aligned, so a transaction's
//! actions land on the same logical partition, as the paper's partitioning
//! tool arranges):
//!
//! | table | key | record |
//! |---|---|---|
//! | Subscriber | `s_id` | 100 B (sub_nbr, bits, hex, msc/vlr location) |
//! | Access_Info | `s_id * 4 + ai_type` | 40 B |
//! | Special_Facility | `s_id * 4 + sf_type` | 40 B |
//! | Call_Forwarding | `s_id * 32 + sf_type * 8 + start_time/8` | 40 B |
//!
//! The transaction mix follows the TATP specification: 80% read transactions
//! (GetSubscriberData 35%, GetNewDestination 10%, GetAccessData 35%) and 20%
//! writes (UpdateSubscriberData 2%, UpdateLocation 14%,
//! Insert/DeleteCallForwarding 2% each).

use plp_core::{Action, ActionOutput, Database, EngineError, TableId, TableSpec, TransactionPlan};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::fields;
use crate::Workload;

pub const SUBSCRIBER: TableId = TableId(0);
pub const ACCESS_INFO: TableId = TableId(1);
pub const SPECIAL_FACILITY: TableId = TableId(2);
pub const CALL_FORWARDING: TableId = TableId(3);

/// Subscriber record layout offsets.
pub mod sub_fields {
    /// `sub_nbr` (the secondary key).
    pub const SUB_NBR: usize = 0;
    /// Packed bit flags.
    pub const BITS: usize = 8;
    /// Packed hex digits.
    pub const HEX: usize = 16;
    /// `msc_location`.
    pub const MSC_LOCATION: usize = 24;
    /// `vlr_location`.
    pub const VLR_LOCATION: usize = 32;
    pub const RECORD_SIZE: usize = 100;
}

const AI_RECORD_SIZE: usize = 40;
const SF_RECORD_SIZE: usize = 40;
const CF_RECORD_SIZE: usize = 40;

/// Offset added to `s_id` to form `sub_nbr` (keeps the two key spaces
/// distinguishable in traces while remaining a bijection).
pub const SUB_NBR_OFFSET: u64 = 1_000_000_000;

/// TATP key encodings.
pub fn access_info_key(s_id: u64, ai_type: u64) -> u64 {
    s_id * 4 + ai_type
}

pub fn special_facility_key(s_id: u64, sf_type: u64) -> u64 {
    s_id * 4 + sf_type
}

pub fn call_forwarding_key(s_id: u64, sf_type: u64, start_time: u64) -> u64 {
    s_id * 32 + sf_type * 8 + start_time / 8
}

/// The TATP workload generator.
pub struct Tatp {
    subscribers: u64,
    /// Subscriber-id distribution (uniform by default; hotspot/Zipfian for
    /// the repartitioning and DLB experiments — the skew's hot range can be
    /// shifted mid-run via [`Tatp::skew`]).
    skew: crate::skew::SkewedKeys,
}

impl Tatp {
    pub fn new(subscribers: u64) -> Self {
        let subscribers = subscribers.max(64);
        Self {
            subscribers,
            skew: crate::skew::SkewedKeys::uniform(subscribers),
        }
    }

    /// Skew the access pattern: `probability` of requests target the first
    /// `fraction` of subscribers.
    pub fn with_hotspot(self, fraction: f64, probability: f64) -> Self {
        self.with_skew(crate::skew::SkewKind::HotSpot {
            fraction,
            probability,
        })
    }

    /// Use an arbitrary skewed subscriber distribution.
    pub fn with_skew(mut self, kind: crate::skew::SkewKind) -> Self {
        self.skew = crate::skew::SkewedKeys::new(self.subscribers, kind);
        self
    }

    /// The subscriber-id sampler; shift its hot range mid-run with
    /// [`crate::skew::SkewedKeys::shift_to`].
    pub fn skew(&self) -> &crate::skew::SkewedKeys {
        &self.skew
    }

    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    /// Pick a subscriber according to the (possibly skewed) access pattern.
    pub fn pick_subscriber(&self, rng: &mut ChaCha8Rng) -> u64 {
        self.skew.sample(rng)
    }

    /// The deterministic load-time subscriber record (also the base for
    /// declarative full-record updates, which reconstruct everything but the
    /// field they change — see `SkewedProbe::next_request`).
    pub fn subscriber_record(s_id: u64) -> Vec<u8> {
        let mut r = vec![0u8; sub_fields::RECORD_SIZE];
        fields::set_u64(&mut r, sub_fields::SUB_NBR, s_id + SUB_NBR_OFFSET);
        fields::set_u64(&mut r, sub_fields::BITS, s_id ^ 0x5555_5555);
        fields::set_u64(&mut r, sub_fields::HEX, s_id.rotate_left(13));
        fields::set_u64(&mut r, sub_fields::MSC_LOCATION, s_id * 31);
        fields::set_u64(&mut r, sub_fields::VLR_LOCATION, s_id * 17);
        r
    }

    fn small_record(size: usize, seed: u64) -> Vec<u8> {
        let mut r = vec![0u8; size];
        fields::set_u64(&mut r, 0, seed);
        fields::set_u64(&mut r, 8, seed.wrapping_mul(2654435761));
        r
    }

    // ------------------------------------------------------------------
    // The seven TATP transactions, as plans
    // ------------------------------------------------------------------

    /// GetSubscriberData: read one subscriber row (read-only).
    pub fn get_subscriber_data(&self, s_id: u64) -> TransactionPlan {
        TransactionPlan::single(Action::new(SUBSCRIBER, s_id, move |ctx| {
            let row = ctx.read(SUBSCRIBER, s_id)?;
            Ok(ActionOutput::with_rows(row.into_iter().collect()))
        }))
    }

    /// GetNewDestination: read a special facility and its active call
    /// forwarding entries (read-only).
    pub fn get_new_destination(&self, s_id: u64, sf_type: u64) -> TransactionPlan {
        TransactionPlan::single(Action::new(SPECIAL_FACILITY, s_id * 4, move |ctx| {
            let sf = ctx.read(SPECIAL_FACILITY, special_facility_key(s_id, sf_type))?;
            let mut out = ActionOutput::empty();
            if let Some(sf) = sf {
                out.rows.push(sf);
                let lo = call_forwarding_key(s_id, sf_type, 0);
                let hi = call_forwarding_key(s_id, sf_type, 23);
                for (_, row) in ctx.range_read(CALL_FORWARDING, lo, hi)? {
                    out.rows.push(row);
                }
            }
            Ok(out)
        }))
    }

    /// GetAccessData: read one access-info row (read-only).
    pub fn get_access_data(&self, s_id: u64, ai_type: u64) -> TransactionPlan {
        TransactionPlan::single(Action::new(ACCESS_INFO, s_id * 4, move |ctx| {
            let row = ctx.read(ACCESS_INFO, access_info_key(s_id, ai_type))?;
            Ok(ActionOutput::with_rows(row.into_iter().collect()))
        }))
    }

    /// UpdateSubscriberData: update subscriber bits and special-facility data
    /// (two actions, exercising the multi-action rendezvous).
    pub fn update_subscriber_data(&self, s_id: u64, sf_type: u64, bits: u64) -> TransactionPlan {
        TransactionPlan::parallel(vec![
            Action::new(SUBSCRIBER, s_id, move |ctx| {
                let found = ctx.update(SUBSCRIBER, s_id, &mut |r| {
                    fields::set_u64(r, sub_fields::BITS, bits);
                })?;
                Ok(ActionOutput::with_values(vec![u64::from(found)]))
            }),
            Action::new(SPECIAL_FACILITY, s_id * 4, move |ctx| {
                let found = ctx.update(
                    SPECIAL_FACILITY,
                    special_facility_key(s_id, sf_type),
                    &mut |r| fields::set_u64(r, 8, bits.rotate_left(7)),
                )?;
                Ok(ActionOutput::with_values(vec![u64::from(found)]))
            }),
        ])
    }

    /// UpdateLocation: look up the subscriber by number (secondary index) and
    /// update its VLR location.
    pub fn update_location(&self, sub_nbr: u64, new_location: u64) -> TransactionPlan {
        let s_id_guess = sub_nbr - SUB_NBR_OFFSET;
        TransactionPlan::single(Action::new(SUBSCRIBER, s_id_guess, move |ctx| {
            let s_id = ctx
                .secondary_probe(SUBSCRIBER, sub_nbr)?
                .ok_or_else(|| EngineError::Abort("unknown sub_nbr".into()))?;
            ctx.update(SUBSCRIBER, s_id, &mut |r| {
                fields::set_u64(r, sub_fields::VLR_LOCATION, new_location);
            })?;
            Ok(ActionOutput::empty())
        }))
    }

    /// InsertCallForwarding: secondary lookup, check the special facility
    /// exists, then insert the call-forwarding row (second stage).
    pub fn insert_call_forwarding(
        &self,
        sub_nbr: u64,
        sf_type: u64,
        start_time: u64,
    ) -> TransactionPlan {
        let s_id_guess = sub_nbr - SUB_NBR_OFFSET;
        TransactionPlan::single(Action::new(SUBSCRIBER, s_id_guess, move |ctx| {
            let s_id = ctx
                .secondary_probe(SUBSCRIBER, sub_nbr)?
                .ok_or_else(|| EngineError::Abort("unknown sub_nbr".into()))?;
            let sf = ctx.read(SPECIAL_FACILITY, special_facility_key(s_id, sf_type))?;
            if sf.is_none() {
                return Err(EngineError::Abort("no such special facility".into()));
            }
            Ok(ActionOutput::with_values(vec![s_id]))
        }))
        .followed_by(move |outputs| {
            let Some(s_id) = outputs.first().and_then(|o| o.values.first()).copied() else {
                return TransactionPlan::empty();
            };
            let key = call_forwarding_key(s_id, sf_type, start_time);
            TransactionPlan::single(Action::new(CALL_FORWARDING, key, move |ctx| {
                let record = Tatp::small_record(CF_RECORD_SIZE, key);
                match ctx.insert(CALL_FORWARDING, key, &record, None) {
                    Ok(()) => Ok(ActionOutput::with_values(vec![1])),
                    // The TATP spec expects ~30% of inserts to fail on an
                    // existing row; that is a valid transaction outcome.
                    Err(EngineError::DuplicateKey { .. }) => Ok(ActionOutput::with_values(vec![0])),
                    Err(e) => Err(e),
                }
            }))
        })
    }

    /// DeleteCallForwarding: secondary lookup then delete the row.
    pub fn delete_call_forwarding(
        &self,
        sub_nbr: u64,
        sf_type: u64,
        start_time: u64,
    ) -> TransactionPlan {
        let s_id_guess = sub_nbr - SUB_NBR_OFFSET;
        TransactionPlan::single(Action::new(SUBSCRIBER, s_id_guess, move |ctx| {
            let s_id = ctx
                .secondary_probe(SUBSCRIBER, sub_nbr)?
                .ok_or_else(|| EngineError::Abort("unknown sub_nbr".into()))?;
            Ok(ActionOutput::with_values(vec![s_id]))
        }))
        .followed_by(move |outputs| {
            let Some(s_id) = outputs.first().and_then(|o| o.values.first()).copied() else {
                return TransactionPlan::empty();
            };
            let key = call_forwarding_key(s_id, sf_type, start_time);
            TransactionPlan::single(Action::new(CALL_FORWARDING, key, move |ctx| {
                let deleted = ctx.delete(CALL_FORWARDING, key, None)?;
                Ok(ActionOutput::with_values(vec![u64::from(deleted)]))
            }))
        })
    }
}

impl Workload for Tatp {
    fn name(&self) -> &'static str {
        "TATP"
    }

    fn schema(&self) -> Vec<TableSpec> {
        let s = self.subscribers;
        vec![
            TableSpec::new(0, "subscriber", s).with_secondary(),
            TableSpec::new(1, "access_info", s * 4)
                .with_granularity(4)
                .aligned_with(SUBSCRIBER),
            TableSpec::new(2, "special_facility", s * 4)
                .with_granularity(4)
                .aligned_with(SUBSCRIBER),
            TableSpec::new(3, "call_forwarding", s * 32)
                .with_granularity(32)
                .aligned_with(SUBSCRIBER),
        ]
    }

    fn load(&self, db: &Database) -> Result<(), EngineError> {
        for s_id in 0..self.subscribers {
            db.load_record(
                SUBSCRIBER,
                s_id,
                &Self::subscriber_record(s_id),
                Some(s_id + SUB_NBR_OFFSET),
            )?;
            for ai_type in 0..4 {
                db.load_record(
                    ACCESS_INFO,
                    access_info_key(s_id, ai_type),
                    &Self::small_record(AI_RECORD_SIZE, s_id * 4 + ai_type),
                    None,
                )?;
            }
            for sf_type in 0..4 {
                db.load_record(
                    SPECIAL_FACILITY,
                    special_facility_key(s_id, sf_type),
                    &Self::small_record(SF_RECORD_SIZE, s_id * 4 + sf_type),
                    None,
                )?;
            }
            // Roughly half the subscribers get call-forwarding rows, one per
            // (sf_type 0, start_time in {0, 8, 16}).
            if s_id % 2 == 0 {
                for start in [0u64, 8, 16] {
                    db.load_record(
                        CALL_FORWARDING,
                        call_forwarding_key(s_id, 0, start),
                        &Self::small_record(CF_RECORD_SIZE, s_id * 32 + start),
                        None,
                    )?;
                }
            }
        }
        Ok(())
    }

    fn next_transaction(&self, rng: &mut ChaCha8Rng) -> TransactionPlan {
        let s_id = self.pick_subscriber(rng);
        let sub_nbr = s_id + SUB_NBR_OFFSET;
        let roll = rng.gen_range(0..100u32);
        match roll {
            0..=34 => self.get_subscriber_data(s_id),
            35..=44 => self.get_new_destination(s_id, rng.gen_range(0..4)),
            45..=79 => self.get_access_data(s_id, rng.gen_range(0..4)),
            80..=81 => self.update_subscriber_data(s_id, rng.gen_range(0..4), rng.gen()),
            82..=95 => self.update_location(sub_nbr, rng.gen()),
            96..=97 => self.insert_call_forwarding(
                sub_nbr,
                0,
                *[0u64, 8, 16].get(rng.gen_range(0..3)).unwrap(),
            ),
            _ => self.delete_call_forwarding(
                sub_nbr,
                0,
                *[0u64, 8, 16].get(rng.gen_range(0..3)).unwrap(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_encodings_are_disjoint_per_subscriber() {
        assert_eq!(access_info_key(10, 3), 43);
        assert_eq!(special_facility_key(10, 3), 43);
        assert!(call_forwarding_key(10, 0, 0) < call_forwarding_key(10, 0, 8));
        assert!(call_forwarding_key(10, 3, 16) < call_forwarding_key(11, 0, 0));
    }

    #[test]
    fn mix_generates_all_transaction_types() {
        let tatp = Tatp::new(100);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut multi_action = 0;
        let mut staged = 0;
        for _ in 0..500 {
            let plan = tatp.next_transaction(&mut rng);
            if plan.action_count() > 1 {
                multi_action += 1;
            }
            if plan.then.is_some() {
                staged += 1;
            }
        }
        assert!(multi_action > 0, "UpdateSubscriberData should appear");
        assert!(staged > 0, "Insert/DeleteCallForwarding should appear");
    }

    #[test]
    fn hotspot_skews_subscriber_choice() {
        let tatp = Tatp::new(10_000).with_hotspot(0.1, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hot = (0..10_000)
            .filter(|_| tatp.pick_subscriber(&mut rng) < 1_000)
            .count();
        // ~50% forced hot + ~10% of the uniform half ≈ 55%.
        assert!(hot > 4_500 && hot < 6_500, "hot fraction = {hot}");
    }
}
