//! Skewed key distributions with a mid-run shift.
//!
//! The dynamic-load-balancing experiments need an *adversary*: a workload
//! whose hot range is narrow, carries most of the traffic and — crucially —
//! moves mid-run, so a static partitioning that was perfect a second ago is
//! suddenly terrible.  This module provides that:
//!
//! * [`SkewKind::HotSpot`] — `probability` of draws land uniformly in the
//!   first `fraction` of the key space (the paper's Figure 8 load shift).
//! * [`SkewKind::Zipfian`] — rank-`r` key drawn with probability
//!   `∝ 1/(r+1)^theta` (the Gray et al. generator YCSB popularized), so hot
//!   keys cluster at the low end of the rotated space.
//! * [`SkewedKeys::shift_to`] — atomically rotates the whole distribution by
//!   an offset, relocating the hot range without touching the workers.
//!
//! Samplers are stateless per-draw (all state is in the caller's RNG plus
//! one shared `AtomicU64` for the rotation), so one `SkewedKeys` can be
//! shared by every client thread.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The shape of the access distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewKind {
    /// Every key equally likely.
    Uniform,
    /// `probability` of draws hit the first `fraction` of the (rotated) key
    /// space; the rest are uniform over the whole space.
    HotSpot { fraction: f64, probability: f64 },
    /// Zipfian with exponent `theta` in `(0, 1)`; rank 0 (the hottest key)
    /// maps to the rotation offset.
    Zipfian { theta: f64 },
}

/// A shareable skewed key sampler over `[0, key_space)`.
#[derive(Debug)]
pub struct SkewedKeys {
    key_space: u64,
    kind: SkewKind,
    /// Rotation: drawn base keys are shifted by this amount (mod key_space),
    /// so the hot range starts here.
    offset: AtomicU64,
    /// Precomputed Zipfian constants (`zetan`, `eta`, `alpha`), zero for the
    /// other kinds.
    zipf: Option<ZipfConstants>,
}

#[derive(Debug, Clone, Copy)]
struct ZipfConstants {
    theta: f64,
    zetan: f64,
    eta: f64,
    alpha: f64,
}

impl SkewedKeys {
    pub fn new(key_space: u64, kind: SkewKind) -> Self {
        let key_space = key_space.max(1);
        let zipf = match kind {
            SkewKind::Zipfian { theta } => {
                assert!(
                    (0.0..1.0).contains(&theta),
                    "zipfian theta must be in (0, 1)"
                );
                let n = key_space as f64;
                let zetan: f64 = (1..=key_space).map(|i| 1.0 / (i as f64).powf(theta)).sum();
                let zeta2 = 1.0 + 0.5f64.powf(theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Some(ZipfConstants {
                    theta,
                    zetan,
                    eta,
                    alpha,
                })
            }
            _ => None,
        };
        Self {
            key_space,
            kind,
            offset: AtomicU64::new(0),
            zipf,
        }
    }

    pub fn uniform(key_space: u64) -> Self {
        Self::new(key_space, SkewKind::Uniform)
    }

    pub fn hotspot(key_space: u64, fraction: f64, probability: f64) -> Self {
        Self::new(
            key_space,
            SkewKind::HotSpot {
                fraction,
                probability,
            },
        )
    }

    pub fn zipfian(key_space: u64, theta: f64) -> Self {
        Self::new(key_space, SkewKind::Zipfian { theta })
    }

    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    pub fn kind(&self) -> SkewKind {
        self.kind
    }

    /// Where the hot range currently starts.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Acquire)
    }

    /// Move the hot range so it starts at `offset` (mod key space).  Safe to
    /// call while other threads are sampling — that is the whole point.
    pub fn shift_to(&self, offset: u64) {
        self.offset
            .store(offset % self.key_space, Ordering::Release);
    }

    /// The key range `[start, end)` currently holding the distribution's
    /// head: the hot fraction for [`SkewKind::HotSpot`], the same-sized
    /// leading span for [`SkewKind::Zipfian`], everything for uniform.
    /// (May wrap; `end <= key_space` is *not* guaranteed — use modular
    /// arithmetic when comparing.)
    pub fn hot_range(&self) -> (u64, u64) {
        let start = self.offset();
        let len = match self.kind {
            SkewKind::Uniform => self.key_space,
            SkewKind::HotSpot { fraction, .. } => {
                ((self.key_space as f64 * fraction) as u64).max(1)
            }
            // For Zipfian, report the span holding ~the hottest 5%.
            SkewKind::Zipfian { .. } => (self.key_space / 20).max(1),
        };
        (start, start + len)
    }

    /// Draw a key.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        let base = match self.kind {
            SkewKind::Uniform => rng.gen_range(0..self.key_space),
            SkewKind::HotSpot {
                fraction,
                probability,
            } => {
                if rng.gen_bool(probability.clamp(0.0, 1.0)) {
                    let hot = ((self.key_space as f64 * fraction) as u64).max(1);
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(0..self.key_space)
                }
            }
            SkewKind::Zipfian { .. } => self.sample_zipf_rank(rng),
        };
        let offset = self.offset.load(Ordering::Acquire);
        let shifted = base + offset;
        if shifted >= self.key_space {
            shifted - self.key_space
        } else {
            shifted
        }
    }

    /// Gray et al.'s "quick zipf" inversion (the YCSB generator).
    fn sample_zipf_rank(&self, rng: &mut ChaCha8Rng) -> u64 {
        let c = self.zipf.expect("zipf constants");
        let n = self.key_space as f64;
        let u: f64 = rng.gen();
        let uz = u * c.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(c.theta) {
            return 1;
        }
        let rank = (n * (c.eta * u - c.eta + 1.0).powf(c.alpha)) as u64;
        rank.min(self.key_space - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(keys: &SkewedKeys, draws: usize, buckets: usize, seed: u64) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut h = vec![0usize; buckets];
        for _ in 0..draws {
            let k = keys.sample(&mut rng);
            assert!(k < keys.key_space());
            h[(k as u128 * buckets as u128 / keys.key_space() as u128) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_spreads_evenly() {
        let keys = SkewedKeys::uniform(10_000);
        let h = histogram(&keys, 10_000, 10, 1);
        for &b in &h {
            assert!(b > 700 && b < 1_300, "uniform bucket {b}");
        }
    }

    #[test]
    fn hotspot_concentrates_then_shifts() {
        let keys = SkewedKeys::hotspot(10_000, 0.1, 0.9);
        let h = histogram(&keys, 10_000, 10, 2);
        assert!(h[0] > 8_000, "hot bucket holds ~91%: {h:?}");
        // Shift the hotspot to the back half.
        keys.shift_to(8_000);
        assert_eq!(keys.offset(), 8_000);
        let h = histogram(&keys, 10_000, 10, 3);
        assert!(h[8] > 8_000, "hotspot moved to bucket 8: {h:?}");
        assert!(h[0] < 1_000, "old hotspot went cold: {h:?}");
    }

    #[test]
    fn zipfian_is_head_heavy_and_shiftable() {
        let keys = SkewedKeys::zipfian(10_000, 0.99);
        let h = histogram(&keys, 20_000, 100, 4);
        // The first percentile of keys should dominate any middle percentile.
        assert!(
            h[0] > 5 * h[50].max(1),
            "zipf head {} vs mid {}",
            h[0],
            h[50]
        );
        let total_head: usize = h[..5].iter().sum();
        assert!(
            total_head > 20_000 / 4,
            "first 5% of keys should hold >25% of draws, got {total_head}"
        );
        keys.shift_to(5_000);
        let h = histogram(&keys, 20_000, 100, 5);
        assert!(h[50] > 5 * h[0].max(1), "zipf head moved to the middle");
    }

    #[test]
    fn hot_range_tracks_shift() {
        let keys = SkewedKeys::hotspot(1_000, 0.05, 0.9);
        assert_eq!(keys.hot_range(), (0, 50));
        keys.shift_to(600);
        assert_eq!(keys.hot_range(), (600, 650));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        SkewedKeys::zipfian(100, 1.5);
    }
}
