//! The engine flight recorder: a bounded in-memory time series of stats
//! deltas plus a crash/shutdown dump.
//!
//! A [`FlightRecorder`] holds the last `capacity` [`Sample`]s — each one the
//! counter deltas and latency-histogram summaries for one sampling interval.
//! The engine's metrics sampler thread calls [`FlightRecorder::sample_now`]
//! on its configured cadence; exporters ([`FlightRecorder::samples_json`],
//! [`FlightRecorder::samples_table`]) turn the ring into machine- or
//! human-readable time series.
//!
//! For autopsies, [`register_flight_dump`] ties a recorder + stats registry
//! to a file path in a process-global registry and installs (once, chaining
//! any existing hook) a panic hook that writes every registered target's
//! [`dump_json`](FlightRecorder::dump_json) — time series, whole-run latency
//! summaries, and the chrome://tracing dump of every trace ring — so a dying
//! worker leaves its last seconds on disk. Engine shutdown writes the same
//! dump with reason `"shutdown"`.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock, Weak};

use parking_lot::Mutex;

use crate::histogram::LatencySnapshot;
use crate::report::json_string_literal;
use crate::stats::{StatsRegistry, StatsSnapshot};
use crate::trace::now_nanos;

/// Default number of retained samples (at the default 100 ms interval, about
/// half a minute of history).
pub const DEFAULT_FLIGHT_SAMPLES: usize = 256;

/// Per-interval summary of one latency histogram.
#[derive(Clone, Debug)]
pub struct HistPoint {
    pub name: &'static str,
    pub count: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// One sampling interval's worth of engine activity: counter deltas plus
/// interval quantiles for every latency histogram that saw samples.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Trace-clock timestamp (ns) when the sample was taken.
    pub at_nanos: u64,
    pub committed: u64,
    pub aborted: u64,
    pub actions: u64,
    pub batches: u64,
    pub parks: u64,
    pub wal_flushes: u64,
    pub wal_fsyncs: u64,
    pub wal_bytes: u64,
    pub repartitions: u64,
    pub hist: Vec<HistPoint>,
}

impl Sample {
    fn from_deltas(at_nanos: u64, stats: &StatsSnapshot, latency: &LatencySnapshot) -> Self {
        let hist = latency
            .named()
            .into_iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(name, h)| HistPoint {
                name,
                count: h.count,
                p50: h.p50(),
                p99: h.p99(),
                max: h.max,
            })
            .collect();
        Sample {
            at_nanos,
            committed: stats.committed,
            aborted: stats.aborted,
            actions: stats.msg.actions,
            batches: stats.msg.batches,
            parks: stats.msg.parks,
            wal_flushes: stats.wal.flush_batches,
            wal_fsyncs: stats.wal.fsyncs,
            wal_bytes: stats.wal.flushed_bytes,
            repartitions: stats.dlb.repartitions_triggered,
            hist,
        }
    }

    fn json(&self) -> String {
        let mut out = format!(
            "{{\"at_nanos\":{},\"committed\":{},\"aborted\":{},\"actions\":{},\
             \"batches\":{},\"parks\":{},\"wal_flushes\":{},\"wal_fsyncs\":{},\
             \"wal_bytes\":{},\"repartitions\":{},\"hist\":[",
            self.at_nanos,
            self.committed,
            self.aborted,
            self.actions,
            self.batches,
            self.parks,
            self.wal_flushes,
            self.wal_fsyncs,
            self.wal_bytes,
            self.repartitions,
        );
        for (i, h) in self.hist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                json_string_literal(h.name),
                h.count,
                h.p50,
                h.p99,
                h.max
            ));
        }
        out.push_str("]}");
        out
    }
}

struct RecorderInner {
    prev_stats: Option<StatsSnapshot>,
    prev_latency: Option<LatencySnapshot>,
    samples: VecDeque<Sample>,
}

/// Bounded time-series ring of [`Sample`]s. See the module docs.
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_SAMPLES)
    }
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            inner: Mutex::new(RecorderInner {
                prev_stats: None,
                prev_latency: None,
                samples: VecDeque::new(),
            }),
        }
    }

    /// Take one sample: snapshot `stats`, delta against the previous
    /// snapshot, and append to the ring (evicting the oldest at capacity).
    pub fn sample_now(&self, stats: &StatsRegistry) {
        let now_stats = stats.snapshot();
        let now_latency = stats.latency().snapshot();
        let mut inner = self.inner.lock();
        let stats_delta = match &inner.prev_stats {
            Some(prev) => now_stats.delta(prev),
            None => now_stats,
        };
        let latency_delta = match &inner.prev_latency {
            Some(prev) => now_latency.delta(prev),
            None => now_latency.clone(),
        };
        let sample = Sample::from_deltas(now_nanos(), &stats_delta, &latency_delta);
        if inner.samples.len() == self.capacity {
            inner.samples.pop_front();
        }
        inner.samples.push_back(sample);
        inner.prev_stats = Some(now_stats);
        inner.prev_latency = Some(now_latency);
    }

    /// Copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        self.inner.lock().samples.iter().cloned().collect()
    }

    /// The retained time series as a JSON array.
    pub fn samples_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.json());
        }
        out.push(']');
        out
    }

    /// The retained time series as a table (one row per sample).
    pub fn samples_table(&self) -> crate::Table {
        let mut t = crate::Table::new(
            "Flight recorder — per-interval deltas",
            &[
                "t (ms)",
                "committed",
                "aborted",
                "actions",
                "wal flushes",
                "fsyncs",
                "repartitions",
                "roundtrip p99 (µs)",
            ],
        );
        for s in self.samples() {
            let p99 = s
                .hist
                .iter()
                .find(|h| h.name == "action_roundtrip")
                .map(|h| crate::Cell::FloatPrec(h.p99 as f64 / 1_000.0, 1))
                .unwrap_or(crate::Cell::Empty);
            t.row(vec![
                crate::Cell::FloatPrec(s.at_nanos as f64 / 1e6, 1),
                crate::Cell::from(s.committed),
                crate::Cell::from(s.aborted),
                crate::Cell::from(s.actions),
                crate::Cell::from(s.wal_flushes),
                crate::Cell::from(s.wal_fsyncs),
                crate::Cell::from(s.repartitions),
                p99,
            ]);
        }
        t
    }

    /// The full autopsy document: `reason`, the sample time series, the
    /// whole-run latency summaries, the slow-transaction reservoir, the DLB
    /// decision audit log, and every trace ring in chrome://tracing form.
    pub fn dump_json(&self, stats: &StatsRegistry, reason: &str) -> String {
        let mut out = format!(
            "{{\"reason\":{},\"dumped_at_nanos\":{},\"samples\":",
            json_string_literal(reason),
            now_nanos()
        );
        out.push_str(&self.samples_json());
        out.push_str(",\"latency\":[");
        for (i, (name, h)) in stats.latency().snapshot().named().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\
                 \"p99\":{},\"p999\":{},\"max\":{}}}",
                json_string_literal(name),
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max
            ));
        }
        out.push_str("],\"slow\":");
        out.push_str(&stats.slow().json());
        out.push_str(",\"decisions\":");
        out.push_str(&stats.dlb_decisions().json());
        out.push_str(",\"trace\":");
        out.push_str(&stats.trace().chrome_json());
        out.push('}');
        out
    }

    /// Write [`dump_json`](Self::dump_json) to `path`, ignoring IO errors
    /// (the dump path runs inside panic hooks and shutdown, where failing
    /// loudly helps no one).
    pub fn dump_to(&self, path: &Path, stats: &StatsRegistry, reason: &str) {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(path, self.dump_json(stats, reason));
    }
}

struct DumpTarget {
    path: PathBuf,
    recorder: Weak<FlightRecorder>,
    stats: Weak<StatsRegistry>,
}

fn targets() -> &'static Mutex<Vec<DumpTarget>> {
    static TARGETS: OnceLock<Mutex<Vec<DumpTarget>>> = OnceLock::new();
    TARGETS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Dump every live registered target to its path. Called by the panic hook
/// and usable directly (e.g. from tests or a signal handler).
pub fn dump_all_targets(reason: &str) {
    // `try_lock` so a panic *inside* the registry lock can never deadlock the
    // hook; worst case we skip the autopsy.
    let Some(targets) = targets().try_lock() else {
        return;
    };
    for t in targets.iter() {
        if let (Some(recorder), Some(stats)) = (t.recorder.upgrade(), t.stats.upgrade()) {
            recorder.dump_to(&t.path, &stats, reason);
        }
    }
}

/// Register `recorder` to be dumped to `path` when any thread panics (and
/// install the process-wide panic hook on first use). The registry holds weak
/// references: drop the recorder and the target goes dead; call
/// [`unregister_flight_dump`] to remove it eagerly (normal shutdown).
pub fn register_flight_dump(
    path: PathBuf,
    recorder: &Arc<FlightRecorder>,
    stats: &Arc<StatsRegistry>,
) {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_all_targets("panic");
            previous(info);
        }));
    });
    targets().lock().push(DumpTarget {
        path,
        recorder: Arc::downgrade(recorder),
        stats: Arc::downgrade(stats),
    });
}

/// Remove `recorder`'s dump target (and any dead ones).
pub fn unregister_flight_dump(recorder: &Arc<FlightRecorder>) {
    targets()
        .lock()
        .retain(|t| t.recorder.upgrade().is_some_and(|r| r.id != recorder.id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::json_is_valid;

    #[test]
    fn sampling_produces_deltas() {
        let stats = StatsRegistry::new_shared();
        let recorder = FlightRecorder::new(4);
        stats.txn_committed();
        recorder.sample_now(&stats);
        stats.txn_committed();
        stats.txn_committed();
        stats.latency().action_roundtrip.record(5_000);
        recorder.sample_now(&stats);
        let samples = recorder.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].committed, 1);
        assert_eq!(samples[1].committed, 2);
        assert_eq!(samples[1].hist.len(), 1);
        assert_eq!(samples[1].hist[0].name, "action_roundtrip");
        assert_eq!(samples[1].hist[0].count, 1);
    }

    #[test]
    fn ring_is_bounded() {
        let stats = StatsRegistry::new_shared();
        let recorder = FlightRecorder::new(3);
        for _ in 0..10 {
            recorder.sample_now(&stats);
        }
        assert_eq!(recorder.samples().len(), 3);
    }

    #[test]
    fn default_ring_wraps_past_256_samples() {
        let stats = StatsRegistry::new_shared();
        let recorder = FlightRecorder::default();
        // 300 samples, one committed txn between each: sample i (0-based)
        // carries a delta of exactly 1 except the first (0 before any txn).
        recorder.sample_now(&stats);
        for _ in 1..300 {
            stats.txn_committed();
            recorder.sample_now(&stats);
        }
        let samples = recorder.samples();
        assert_eq!(samples.len(), DEFAULT_FLIGHT_SAMPLES);
        // Oldest retained sample is #44 (300 - 256), i.e. a delta, not the
        // absolute counter value — wraparound must not lose the baseline.
        assert!(samples.iter().all(|s| s.committed == 1));
        // Timestamps stay monotone across the wrap.
        assert!(samples.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        // The JSON export of a wrapped ring stays valid and bounded.
        let json = recorder.samples_json();
        assert!(json_is_valid(&json));
        assert_eq!(json.matches("\"at_nanos\"").count(), DEFAULT_FLIGHT_SAMPLES);
    }

    #[test]
    fn dump_json_is_valid_and_complete() {
        let stats = StatsRegistry::new_shared();
        let ring = stats.trace().register("worker-9");
        ring.instant(crate::trace::TraceEvent::Commit, 3);
        let recorder = FlightRecorder::new(8);
        stats.latency().wal_fsync.record(123);
        recorder.sample_now(&stats);
        stats.slow().offer(crate::slowlog::SlowTxn {
            txn_id: 42,
            started_at_nanos: 1,
            total_nanos: 9_999,
            actions: 3,
            phases: Default::default(),
        });
        stats.dlb_decisions().push(crate::slowlog::DlbDecision {
            at_nanos: 5,
            table: 0,
            observed: 2.0,
            predicted: 1.2,
            gain: 0.8,
            net_benefit: 0.3,
            outcome: crate::slowlog::DlbOutcome::Triggered,
            bounds: vec![0, 512],
        });
        let dump = recorder.dump_json(&stats, "test");
        assert!(json_is_valid(&dump), "invalid dump: {dump}");
        assert!(dump.contains("\"reason\":\"test\""));
        assert!(dump.contains("\"wal_fsync\""));
        assert!(dump.contains("\"worker-9\""));
        assert!(dump.contains("\"slow\":[{\"txn_id\":42"));
        assert!(dump.contains("\"outcome\":\"triggered\""));
        assert!(!recorder.samples_table().is_empty());
    }

    #[test]
    fn register_and_dump_targets() {
        let stats = StatsRegistry::new_shared();
        let recorder = Arc::new(FlightRecorder::new(8));
        recorder.sample_now(&stats);
        let dir = std::env::temp_dir().join(format!("plp-recorder-test-{}", std::process::id()));
        let path = dir.join("dump.json");
        register_flight_dump(path.clone(), &recorder, &stats);
        dump_all_targets("unit");
        let dump = std::fs::read_to_string(&path).expect("dump written");
        assert!(json_is_valid(&dump));
        assert!(dump.contains("\"reason\":\"unit\""));
        unregister_flight_dump(&recorder);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
