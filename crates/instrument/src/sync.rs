//! Instrumented synchronization primitives.
//!
//! Every mutex or reader-writer lock protecting storage-manager state is a
//! *critical section* in the paper's terminology.  These wrappers behave like
//! `parking_lot::Mutex`/`RwLock` but report each acquisition (and whether it
//! was contended) into a [`StatsRegistry`] under a fixed [`CsCategory`].

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::stats::{CsCategory, StatsRegistry};

/// A mutex whose acquisitions are counted as critical-section entries.
#[derive(Debug)]
pub struct InstrumentedMutex<T> {
    inner: Mutex<T>,
    category: CsCategory,
    stats: Arc<StatsRegistry>,
}

impl<T> InstrumentedMutex<T> {
    pub fn new(value: T, category: CsCategory, stats: Arc<StatsRegistry>) -> Self {
        Self {
            inner: Mutex::new(value),
            category,
            stats,
        }
    }

    /// Acquire the mutex, recording the entry and whether it was contended.
    /// Returns the guard plus the nanoseconds spent waiting (0 if uncontended).
    pub fn lock(&self) -> (MutexGuard<'_, T>, u64) {
        if let Some(g) = self.inner.try_lock() {
            self.stats.cs().enter(self.category, false);
            (g, 0)
        } else {
            let start = Instant::now();
            let g = self.inner.lock();
            let waited = start.elapsed().as_nanos() as u64;
            self.stats.cs().enter(self.category, true);
            (g, waited)
        }
    }

    /// Acquire without recording any statistics (used on shutdown paths).
    pub fn lock_uninstrumented(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    pub fn category(&self) -> CsCategory {
        self.category
    }
}

/// A reader-writer lock whose acquisitions are counted as critical sections.
#[derive(Debug)]
pub struct InstrumentedRwLock<T> {
    inner: RwLock<T>,
    category: CsCategory,
    stats: Arc<StatsRegistry>,
}

impl<T> InstrumentedRwLock<T> {
    pub fn new(value: T, category: CsCategory, stats: Arc<StatsRegistry>) -> Self {
        Self {
            inner: RwLock::new(value),
            category,
            stats,
        }
    }

    pub fn read(&self) -> (RwLockReadGuard<'_, T>, u64) {
        if let Some(g) = self.inner.try_read() {
            self.stats.cs().enter(self.category, false);
            (g, 0)
        } else {
            let start = Instant::now();
            let g = self.inner.read();
            let waited = start.elapsed().as_nanos() as u64;
            self.stats.cs().enter(self.category, true);
            (g, waited)
        }
    }

    pub fn write(&self) -> (RwLockWriteGuard<'_, T>, u64) {
        if let Some(g) = self.inner.try_write() {
            self.stats.cs().enter(self.category, false);
            (g, 0)
        } else {
            let start = Instant::now();
            let g = self.inner.write();
            let waited = start.elapsed().as_nanos() as u64;
            self.stats.cs().enter(self.category, true);
            (g, waited)
        }
    }

    /// Read without recording statistics (used by background observers).
    pub fn read_uninstrumented(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_counts_uncontended() {
        let stats = StatsRegistry::new_shared();
        let m = InstrumentedMutex::new(0u32, CsCategory::LockMgr, stats.clone());
        {
            let (mut g, waited) = m.lock();
            *g += 1;
            assert_eq!(waited, 0);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.cs.entries(CsCategory::LockMgr), 1);
        assert_eq!(snap.cs.contended(CsCategory::LockMgr), 0);
    }

    #[test]
    fn mutex_counts_contended() {
        let stats = StatsRegistry::new_shared();
        let m = Arc::new(InstrumentedMutex::new(
            0u32,
            CsCategory::LogMgr,
            stats.clone(),
        ));
        let m2 = m.clone();
        let (g, _) = m.lock();
        let h = thread::spawn(move || {
            let (mut g, waited) = m2.lock();
            *g += 1;
            waited
        });
        thread::sleep(Duration::from_millis(20));
        drop(g);
        let waited = h.join().unwrap();
        assert!(waited > 0);
        let snap = stats.snapshot();
        assert_eq!(snap.cs.entries(CsCategory::LogMgr), 2);
        assert_eq!(snap.cs.contended(CsCategory::LogMgr), 1);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let stats = StatsRegistry::new_shared();
        let l = InstrumentedRwLock::new(vec![1, 2, 3], CsCategory::Metadata, stats.clone());
        {
            let (g, _) = l.read();
            assert_eq!(g.len(), 3);
        }
        {
            let (mut g, _) = l.write();
            g.push(4);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.cs.entries(CsCategory::Metadata), 2);
    }

    #[test]
    fn uninstrumented_paths_do_not_count() {
        let stats = StatsRegistry::new_shared();
        let m = InstrumentedMutex::new((), CsCategory::Bpool, stats.clone());
        drop(m.lock_uninstrumented());
        let l = InstrumentedRwLock::new((), CsCategory::Bpool, stats.clone());
        drop(l.read_uninstrumented());
        assert_eq!(stats.snapshot().cs.entries(CsCategory::Bpool), 0);
    }
}
