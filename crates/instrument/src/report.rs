//! Plain-text table rendering for the benchmark harness.
//!
//! Every figure/table reproduction binary prints its rows through this module
//! so the output format is uniform and easy to diff against the paper.

use std::fmt::Write as _;

/// A single table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Text(String),
    Int(i64),
    Float(f64),
    /// A float rendered with a fixed number of decimals.
    FloatPrec(f64, usize),
    Empty,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => format!("{v}"),
            Cell::Float(v) => {
                if v.abs() >= 100.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 1.0 {
                    format!("{v:.2}")
                } else {
                    format!("{v:.4}")
                }
            }
            Cell::FloatPrec(v, p) => format!("{v:.*}", p),
            Cell::Empty => "-".to_string(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, row: Vec<Cell>) {
        self.rows.push(row);
    }

    pub fn row(&mut self, cells: impl IntoIterator<Item = Cell>) {
        self.rows.push(cells.into_iter().collect());
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as column-aligned plain text.
    pub fn render(&self) -> String {
        format_table(self)
    }

    /// Render the table as GitHub-flavoured markdown (used for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.render()).collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Render the table as a JSON object (`{"title", "columns", "rows"}`).
    ///
    /// Numeric cells are emitted as JSON numbers, text cells as strings and
    /// empty cells as `null`, so the nightly-CI artifact is machine-readable
    /// without depending on a serialization crate.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"columns\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match cell {
                    Cell::Text(s) => json_string(&mut out, s),
                    Cell::Int(v) => {
                        let _ = write!(out, "{v}");
                    }
                    Cell::Float(v) | Cell::FloatPrec(v, _) => {
                        if v.is_finite() {
                            let _ = write!(out, "{v}");
                        } else {
                            out.push_str("null");
                        }
                    }
                    Cell::Empty => out.push_str("null"),
                }
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Render `s` as a JSON string literal (quotes included).
pub fn json_string_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json_string(&mut out, s);
    out
}

/// Append `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Structural JSON validity check: balanced containers, well-formed strings,
/// numbers, and literals. This is *not* a parser — it exists so tests and the
/// flight-recorder dump path can assert that our hand-rolled JSON emitters
/// produce loadable documents without pulling in a serialization crate.
pub fn json_is_valid(s: &str) -> bool {
    let mut stack: Vec<char> = Vec::new();
    let mut chars = s.chars().peekable();
    // Tracks whether a value is legal at this point (vs. expecting ',' etc.);
    // kept deliberately loose — the emitters, not arbitrary input, are under
    // test. Structure (nesting, string escapes, token shape) is checked.
    let mut saw_value = false;
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                stack.push('}');
                saw_value = false;
            }
            '[' => {
                stack.push(']');
                saw_value = false;
            }
            '}' | ']' => {
                if stack.pop() != Some(c) {
                    return false;
                }
                saw_value = true;
            }
            '"' => {
                loop {
                    match chars.next() {
                        None => return false,
                        Some('\\') => match chars.next() {
                            Some('u') => {
                                for _ in 0..4 {
                                    match chars.next() {
                                        Some(h) if h.is_ascii_hexdigit() => {}
                                        _ => return false,
                                    }
                                }
                            }
                            Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                            _ => return false,
                        },
                        Some('"') => break,
                        Some(c) if (c as u32) < 0x20 => return false,
                        Some(_) => {}
                    }
                }
                saw_value = true;
            }
            ',' | ':' => saw_value = false,
            c if c.is_whitespace() => {}
            c if c.is_ascii_digit() || c == '-' => {
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || matches!(n, '.' | 'e' | 'E' | '+' | '-') {
                        chars.next();
                    } else {
                        break;
                    }
                }
                saw_value = true;
            }
            't' | 'f' | 'n' => {
                let word = match c {
                    't' => "rue",
                    'f' => "alse",
                    _ => "ull",
                };
                for expect in word.chars() {
                    if chars.next() != Some(expect) {
                        return false;
                    }
                }
                saw_value = true;
            }
            _ => return false,
        }
    }
    stack.is_empty() && saw_value
}

/// Render a [`Table`] with aligned columns.
pub fn format_table(table: &Table) -> String {
    let ncols = table
        .headers
        .len()
        .max(table.rows.iter().map(|r| r.len()).max().unwrap_or(0));
    let mut widths = vec![0usize; ncols];
    for (i, h) in table.headers.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    let rendered_rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| r.iter().map(|c| c.render()).collect())
        .collect();
    for row in &rendered_rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    if !table.title.is_empty() {
        let _ = writeln!(out, "== {} ==", table.title);
    }
    if !table.headers.is_empty() {
        let header_line: Vec<String> = table
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
    }
    for row in &rendered_rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["design", "tps"]);
        t.row(vec![Cell::from("Conventional"), Cell::from(123u64)]);
        t.row(vec![Cell::from("PLP"), Cell::from(456u64)]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("Conventional"));
        assert!(s.contains("456"));
        // Columns aligned: both rows have same offset for the tps column.
        let lines: Vec<&str> = s.lines().collect();
        let conv = lines.iter().find(|l| l.contains("Conventional")).unwrap();
        let plp = lines.iter().find(|l| l.starts_with("PLP")).unwrap();
        assert_eq!(conv.find("123"), plp.find("456"));
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("md", &["a", "b"]);
        t.row(vec![Cell::from(1u64), Cell::from(2u64)]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::from(3u64).render(), "3");
        assert_eq!(Cell::Empty.render(), "-");
        assert_eq!(Cell::FloatPrec(1.23456, 2).render(), "1.23");
        assert_eq!(Cell::Float(0.5).render(), "0.5000");
        assert_eq!(Cell::Float(12.5).render(), "12.50");
        assert_eq!(Cell::Float(1200.0).render(), "1200");
    }

    #[test]
    fn json_string_literal_escapes_control_chars() {
        assert_eq!(
            json_string_literal("a\nb\"c\\\u{1}"),
            "\"a\\nb\\\"c\\\\\\u0001\""
        );
    }

    #[test]
    fn json_rendering_escapes_and_types() {
        let mut t = Table::new("fig \"x\"", &["design", "tps"]);
        t.row(vec![Cell::from("a\\b"), Cell::FloatPrec(1.5, 2)]);
        t.row(vec![Cell::from("c"), Cell::Empty]);
        let json = t.render_json();
        assert_eq!(
            json,
            "{\"title\":\"fig \\\"x\\\"\",\"columns\":[\"design\",\"tps\"],\
             \"rows\":[[\"a\\\\b\",1.5],[\"c\",null]]}"
        );
    }

    #[test]
    fn json_validity_checker() {
        assert!(json_is_valid(
            "{\"a\":[1,2.5,-3e4],\"b\":\"x\\n\",\"c\":null}"
        ));
        assert!(json_is_valid("[]"));
        assert!(json_is_valid("{\"t\":true,\"f\":false}"));
        assert!(!json_is_valid("{\"a\":[1,2}"));
        assert!(!json_is_valid("{\"a\": \"unterminated"));
        assert!(!json_is_valid("{\"bad\\q\": 1}"));
        assert!(!json_is_valid(""));
        assert!(!json_is_valid("@"));
        let mut t = Table::new("fig", &["a"]);
        t.row(vec![Cell::from("x\"y")]);
        assert!(json_is_valid(&t.render_json()));
    }

    #[test]
    fn empty_table() {
        let t = Table::new("", &[]);
        assert!(t.is_empty());
        assert_eq!(t.render().trim(), "");
    }
}
