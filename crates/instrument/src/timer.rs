//! Small timing helpers used on instrumented wait paths.

use std::time::{Duration, Instant};

use crate::breakdown::{TimeBreakdown, TimeBucket};

/// Measures the elapsed time of a scope and reports it into a
/// [`TimeBreakdown`] bucket when dropped.
///
/// ```
/// use plp_instrument::{TimeBreakdown, TimeBucket, ScopedTimer};
/// let bd = TimeBreakdown::new();
/// {
///     let _t = ScopedTimer::new(&bd, TimeBucket::LockWait);
///     // ... blocking work ...
/// }
/// assert!(bd.snapshot().nanos(TimeBucket::LockWait) < 1_000_000_000);
/// ```
pub struct ScopedTimer<'a> {
    breakdown: &'a TimeBreakdown,
    bucket: TimeBucket,
    start: Instant,
    armed: bool,
}

impl<'a> ScopedTimer<'a> {
    pub fn new(breakdown: &'a TimeBreakdown, bucket: TimeBucket) -> Self {
        Self {
            breakdown,
            bucket,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Cancel the timer; nothing is reported on drop.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.breakdown.add(self.bucket, self.start.elapsed());
        }
    }
}

/// Time a closure and return its result along with the elapsed duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_timer_reports_on_drop() {
        let bd = TimeBreakdown::new();
        {
            let _t = ScopedTimer::new(&bd, TimeBucket::LogWait);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(bd.snapshot().nanos(TimeBucket::LogWait) >= 1_000_000);
    }

    #[test]
    fn cancelled_timer_reports_nothing() {
        let bd = TimeBreakdown::new();
        let t = ScopedTimer::new(&bd, TimeBucket::LockWait);
        t.cancel();
        assert_eq!(bd.snapshot().nanos(TimeBucket::LockWait), 0);
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
