//! Bounded capture rings: the slow-transaction reservoir and the DLB
//! decision audit log.
//!
//! Both answer "why" questions that counters cannot: *why was this
//! transaction slow* (its [`PhaseBreakdown`] decomposes the round trip into
//! queue / lock / execute / reply / WAL-flush time) and *why did — or didn't
//! — the load balancer repartition* (every controller evaluation leaves a
//! [`DlbDecision`] with the priced gain vs movement cost behind the verdict).
//!
//! The slow log is an admission-filtered reservoir: the hot path pays one
//! relaxed atomic load to reject the fast majority; only a candidate slower
//! than the current top-K floor takes the reservoir mutex. The decision log
//! is a plain mutex-guarded ring — the controller evaluates a few times per
//! second at most, so there is no hot path to protect.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Per-transaction (or per-action) decomposition of round-trip time, in
/// nanoseconds. Carried on worker replies and aggregated by the session into
/// the `phase_*` latency histograms; a transaction's summed breakdown rides
/// into the slow log.
///
/// For one action, `queue + lock + exec + reply` equals the coordinator's
/// observed round trip by construction (the reply phase is derived as the
/// remainder), so the per-phase histogram sums reconcile exactly with
/// `action_roundtrip`. `wal` is the commit-time group-commit wait and lies
/// outside the action round trip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Dispatch enqueue until the worker dequeued the request.
    pub queue_nanos: u64,
    /// Blocked lock acquisition inside the action body.
    pub lock_nanos: u64,
    /// Action body on the worker, minus lock waits.
    pub exec_nanos: u64,
    /// Worker finish until the session consumed the reply.
    pub reply_nanos: u64,
    /// Commit-time wait for the WAL group-commit flush.
    pub wal_nanos: u64,
}

impl PhaseBreakdown {
    /// Fold another breakdown into this one (phase-wise sum, saturating).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.queue_nanos = self.queue_nanos.saturating_add(other.queue_nanos);
        self.lock_nanos = self.lock_nanos.saturating_add(other.lock_nanos);
        self.exec_nanos = self.exec_nanos.saturating_add(other.exec_nanos);
        self.reply_nanos = self.reply_nanos.saturating_add(other.reply_nanos);
        self.wal_nanos = self.wal_nanos.saturating_add(other.wal_nanos);
    }

    /// Sum of every phase.
    pub fn total(&self) -> u64 {
        self.queue_nanos
            .saturating_add(self.lock_nanos)
            .saturating_add(self.exec_nanos)
            .saturating_add(self.reply_nanos)
            .saturating_add(self.wal_nanos)
    }

    /// Record the four round-trip phases into the per-phase histograms.
    /// Zeros are recorded too.  The engine calls this once per *transaction*
    /// on the merged breakdown, so phase sums reconcile exactly against
    /// `action_roundtrip` while counts are per-txn (`wal` is recorded at
    /// its own site).
    pub fn record_roundtrip_phases(&self, latency: &crate::LatencyStats) {
        latency.phase_queue_wait.record(self.queue_nanos);
        latency.phase_lock_wait.record(self.lock_nanos);
        latency.phase_execute.record(self.exec_nanos);
        latency.phase_reply_wait.record(self.reply_nanos);
    }

    fn json(&self) -> String {
        format!(
            "{{\"queue\":{},\"lock\":{},\"exec\":{},\"reply\":{},\"wal\":{}}}",
            self.queue_nanos, self.lock_nanos, self.exec_nanos, self.reply_nanos, self.wal_nanos
        )
    }
}

/// One captured slow transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowTxn {
    /// Transaction id (matches the `txn` span arg in the trace rings, so a
    /// slow-log entry can be correlated with its spans in `/trace.json`).
    pub txn_id: u64,
    /// Transaction start, on the same clock as the trace rings
    /// ([`crate::trace::now_nanos`]).
    pub started_at_nanos: u64,
    /// Whole-transaction wall time (begin to commit/abort returned).
    pub total_nanos: u64,
    /// Actions the transaction dispatched.
    pub actions: u32,
    /// Summed per-action phase times plus the commit-time WAL wait.
    pub phases: PhaseBreakdown,
}

impl SlowTxn {
    fn json(&self) -> String {
        format!(
            "{{\"txn_id\":{},\"started_at_nanos\":{},\"total_nanos\":{},\"actions\":{},\"phases\":{}}}",
            self.txn_id,
            self.started_at_nanos,
            self.total_nanos,
            self.actions,
            self.phases.json()
        )
    }
}

/// Top-K reservoir of the slowest transactions seen since the last reset.
///
/// `offer` is safe to call from every session on every transaction: a single
/// relaxed load of the admission floor rejects anything faster than the
/// current K-th slowest entry, so the mutex is only taken while the
/// reservoir is still filling or by genuine outliers.
#[derive(Debug)]
pub struct SlowLog {
    /// Fast-reject floor: once the reservoir is full, the smallest
    /// `total_nanos` it still holds. Candidates at or below never lock.
    floor_nanos: AtomicU64,
    inner: Mutex<Vec<SlowTxn>>,
    capacity: usize,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl SlowLog {
    pub const DEFAULT_CAPACITY: usize = 32;

    pub fn new(capacity: usize) -> Self {
        Self {
            floor_nanos: AtomicU64::new(0),
            inner: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Offer a finished transaction. Kept only if it ranks among the top-K
    /// slowest. Compiled to the atomic-load reject under `obs-stub`.
    pub fn offer(&self, entry: SlowTxn) {
        if !crate::obs_enabled() {
            return;
        }
        if entry.total_nanos <= self.floor_nanos.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.len() >= self.capacity {
            // Evict the current minimum; the floor only ever rises.
            let (min_idx, _) = match inner.iter().enumerate().min_by_key(|(_, e)| e.total_nanos) {
                Some(m) => m,
                None => return,
            };
            if inner[min_idx].total_nanos >= entry.total_nanos {
                return;
            }
            inner.swap_remove(min_idx);
        }
        inner.push(entry);
        if inner.len() >= self.capacity {
            let new_floor = inner.iter().map(|e| e.total_nanos).min().unwrap_or(0);
            self.floor_nanos.store(new_floor, Ordering::Relaxed);
        }
    }

    /// Entries currently held, slowest first.
    pub fn snapshot(&self) -> Vec<SlowTxn> {
        let mut v = self.inner.lock().clone();
        v.sort_by_key(|e| std::cmp::Reverse(e.total_nanos));
        v
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON array of the held entries, slowest first.
    pub fn json(&self) -> String {
        let entries: Vec<String> = self.snapshot().iter().map(|e| e.json()).collect();
        format!("[{}]", entries.join(","))
    }

    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.clear();
        self.floor_nanos.store(0, Ordering::Relaxed);
    }
}

/// The verdict of one DLB controller evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlbOutcome {
    /// A repartition was triggered and the boundary move succeeded.
    Triggered,
    /// A repartition was triggered but the move failed (and rolled back).
    Failed,
    /// Observed imbalance was below the trigger threshold.
    SkippedBalanced,
    /// The planner found no boundary move that improves the imbalance.
    SkippedNoPlan,
    /// The cost model vetoed the plan (gain too small or negative net
    /// benefit over the pricing horizon).
    SkippedCost,
    /// A repartition happened too recently (cooldown gap not yet elapsed).
    SkippedCooldown,
}

impl DlbOutcome {
    pub fn name(self) -> &'static str {
        match self {
            DlbOutcome::Triggered => "triggered",
            DlbOutcome::Failed => "failed",
            DlbOutcome::SkippedBalanced => "skipped_balanced",
            DlbOutcome::SkippedNoPlan => "skipped_no_plan",
            DlbOutcome::SkippedCost => "skipped_cost",
            DlbOutcome::SkippedCooldown => "skipped_cooldown",
        }
    }
}

/// One DLB controller evaluation, recorded whatever the verdict was — the
/// audit log answers "why did (or didn't) it repartition" after the fact.
#[derive(Clone, Debug)]
pub struct DlbDecision {
    /// When the evaluation ran ([`crate::trace::now_nanos`] clock).
    pub at_nanos: u64,
    /// Root table id the evaluation covered.
    pub table: u32,
    /// Observed imbalance (max/mean partition load).
    pub observed: f64,
    /// Imbalance the candidate plan predicted after the move (the observed
    /// value again when no plan was considered).
    pub predicted: f64,
    /// Predicted imbalance improvement (`observed - predicted`).
    pub gain: f64,
    /// Priced benefit minus movement cost over the pricing horizon
    /// (0 when no plan was considered).
    pub net_benefit: f64,
    /// The verdict.
    pub outcome: DlbOutcome,
    /// Chosen partition boundaries when a move was attempted, else empty.
    pub bounds: Vec<u64>,
}

impl DlbDecision {
    fn json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| b.to_string()).collect();
        format!(
            "{{\"at_nanos\":{},\"table\":{},\"observed\":{:.6},\"predicted\":{:.6},\
             \"gain\":{:.6},\"net_benefit\":{:.6},\"outcome\":{},\"bounds\":[{}]}}",
            self.at_nanos,
            self.table,
            self.observed,
            self.predicted,
            self.gain,
            self.net_benefit,
            crate::json_string_literal(self.outcome.name()),
            bounds.join(",")
        )
    }
}

/// Bounded ring of the most recent [`DlbDecision`]s. Written by the
/// controller thread (cold path), read by `/decisions.json` and the flight
/// recorder's autopsy dump.
#[derive(Debug)]
pub struct DecisionLog {
    inner: Mutex<VecDeque<DlbDecision>>,
    capacity: usize,
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl DecisionLog {
    pub const DEFAULT_CAPACITY: usize = 128;

    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Append a decision, evicting the oldest when full.
    pub fn push(&self, decision: DlbDecision) {
        let mut inner = self.inner.lock();
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(decision);
    }

    /// Decisions currently held, oldest first.
    pub fn snapshot(&self) -> Vec<DlbDecision> {
        self.inner.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON array of the held decisions, oldest first.
    pub fn json(&self) -> String {
        let entries: Vec<String> = self.snapshot().iter().map(|d| d.json()).collect();
        format!("[{}]", entries.join(","))
    }

    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64, total: u64) -> SlowTxn {
        SlowTxn {
            txn_id: id,
            started_at_nanos: id * 10,
            total_nanos: total,
            actions: 2,
            phases: PhaseBreakdown {
                queue_nanos: total / 4,
                lock_nanos: 0,
                exec_nanos: total / 2,
                reply_nanos: total / 4,
                wal_nanos: 0,
            },
        }
    }

    #[test]
    fn phase_breakdown_merges_and_totals() {
        let mut a = PhaseBreakdown {
            queue_nanos: 1,
            lock_nanos: 2,
            exec_nanos: 3,
            reply_nanos: 4,
            wal_nanos: 5,
        };
        let twin = a;
        a.merge(&twin);
        assert_eq!(a.total(), 30);
        assert_eq!(a.queue_nanos, 2);
        assert_eq!(a.wal_nanos, 10);
    }

    #[test]
    fn phase_breakdown_records_into_histograms() {
        let l = crate::LatencyStats::default();
        let b = PhaseBreakdown {
            queue_nanos: 10,
            lock_nanos: 0,
            exec_nanos: 100,
            reply_nanos: 5,
            wal_nanos: 999,
        };
        b.record_roundtrip_phases(&l);
        let s = l.snapshot();
        // All four round-trip phases record (zeros included); wal does not.
        assert_eq!(s.phase_queue_wait.count, 1);
        assert_eq!(s.phase_lock_wait.count, 1);
        assert_eq!(s.phase_execute.count, 1);
        assert_eq!(s.phase_reply_wait.count, 1);
        assert_eq!(s.phase_wal_flush.count, 0);
        assert_eq!(
            s.phase_queue_wait.sum
                + s.phase_lock_wait.sum
                + s.phase_execute.sum
                + s.phase_reply_wait.sum,
            115
        );
    }

    #[test]
    fn slowlog_keeps_top_k_slowest() {
        let log = SlowLog::new(3);
        for id in 0..10u64 {
            log.offer(txn(id, (id + 1) * 100));
        }
        let kept = log.snapshot();
        assert_eq!(kept.len(), 3);
        let totals: Vec<u64> = kept.iter().map(|e| e.total_nanos).collect();
        assert_eq!(totals, vec![1000, 900, 800]);
        // A fast transaction is rejected by the admission floor without
        // changing the reservoir.
        log.offer(txn(99, 1));
        assert_eq!(log.snapshot().len(), 3);
        assert_eq!(log.snapshot()[2].total_nanos, 800);
        // A new outlier evicts the current minimum.
        log.offer(txn(100, 5_000));
        let kept = log.snapshot();
        assert_eq!(kept[0].total_nanos, 5_000);
        assert!(kept.iter().all(|e| e.total_nanos >= 900));
    }

    #[test]
    fn slowlog_json_is_valid_and_sorted() {
        let log = SlowLog::new(4);
        log.offer(txn(1, 300));
        log.offer(txn(2, 700));
        let json = log.json();
        assert!(crate::json_is_valid(&json), "bad json: {json}");
        assert!(json.find("700").unwrap() < json.find("300").unwrap());
        log.reset();
        assert_eq!(log.json(), "[]");
        assert!(log.is_empty());
    }

    #[test]
    fn slowlog_concurrent_offers_keep_global_top_k() {
        use std::sync::Arc;
        let log = Arc::new(SlowLog::new(8));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        log.offer(txn(t * 1000 + i, t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let kept = log.snapshot();
        assert_eq!(kept.len(), 8);
        // The global top-8 totals are 3992..=3999 regardless of interleaving.
        let totals: Vec<u64> = kept.iter().map(|e| e.total_nanos).collect();
        assert_eq!(totals, (3992..=3999).rev().collect::<Vec<u64>>());
    }

    #[test]
    fn decision_log_is_bounded_and_ordered() {
        let log = DecisionLog::new(2);
        for i in 0..5u32 {
            log.push(DlbDecision {
                at_nanos: i as u64,
                table: i,
                observed: 2.0,
                predicted: 1.0,
                gain: 1.0,
                net_benefit: 0.5,
                outcome: DlbOutcome::Triggered,
                bounds: vec![0, 100],
            });
        }
        let kept = log.snapshot();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].table, 3);
        assert_eq!(kept[1].table, 4);
        let json = log.json();
        assert!(crate::json_is_valid(&json), "bad json: {json}");
        assert!(json.contains("\"outcome\":\"triggered\""));
        assert!(json.contains("\"bounds\":[0,100]"));
        log.reset();
        assert!(log.is_empty());
    }

    #[test]
    fn decision_outcomes_have_stable_names() {
        assert_eq!(DlbOutcome::SkippedCooldown.name(), "skipped_cooldown");
        assert_eq!(DlbOutcome::SkippedNoPlan.name(), "skipped_no_plan");
        assert_eq!(DlbOutcome::Failed.name(), "failed");
    }
}
