//! Model-checker exploration counters.
//!
//! The `loom-model` lane (see `docs/concurrency.md`) runs the lock-free
//! protocols under a bounded-exhaustive model checker.  The checker keeps
//! process-global counters of how much state space each test binary actually
//! explored — runs, failing runs, iterations (distinct interleavings),
//! choice points, deepest path.  This module surfaces them through the same
//! instrumentation crate everything else reports into, so a model-check
//! harness can print a coverage line next to its pass/fail status instead of
//! a bare "ok" (an exhaustive pass that explored 4 interleavings and one
//! that explored 40,000 are very different assurances).
//!
//! The counters are cumulative across all `loom::model(..)` calls in the
//! current process and are meaningful only in model-lane builds; in a normal
//! build nothing runs under the checker and every counter stays zero.

use std::fmt;

/// Cumulative exploration totals for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCheckSnapshot {
    /// `loom::model(..)` / `loom::explore(..)` calls completed.
    pub models_run: u64,
    /// Runs that ended with a failing execution report.
    pub models_failed: u64,
    /// Executions (distinct schedules / visibility choices) explored.
    pub iterations: u64,
    /// Total decision points across all executions.
    pub choice_points: u64,
    /// Deepest choice path seen in any single execution.
    pub max_depth: u64,
}

/// Snapshot the process-global model-checker counters.
pub fn model_check_snapshot() -> ModelCheckSnapshot {
    let m = loom::metrics::snapshot();
    ModelCheckSnapshot {
        models_run: m.models_run,
        models_failed: m.models_failed,
        iterations: m.iterations,
        choice_points: m.choice_points,
        max_depth: m.max_depth,
    }
}

impl fmt::Display for ModelCheckSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model checks: {} run, {} failed; {} interleavings explored \
             ({} choice points, deepest path {})",
            self.models_run,
            self.models_failed,
            self.iterations,
            self.choice_points,
            self.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_advance_across_model_runs() {
        let before = model_check_snapshot();
        // The loom types delegate to std outside a model context, but
        // `loom::model` itself always drives the checker.
        loom::model(|| {
            let n = loom::sync::Arc::new(loom::sync::atomic::AtomicUsize::new(0));
            let n2 = n.clone();
            let t = loom::thread::spawn(move || {
                n2.fetch_add(1, loom::sync::atomic::Ordering::SeqCst);
            });
            n.fetch_add(1, loom::sync::atomic::Ordering::SeqCst);
            t.join().unwrap();
        });
        let after = model_check_snapshot();
        assert_eq!(after.models_run, before.models_run + 1);
        assert_eq!(after.models_failed, before.models_failed);
        assert!(after.iterations > before.iterations);
        assert!(after.choice_points >= before.choice_points);
        assert!(after.max_depth >= 1);
    }

    #[test]
    fn snapshot_renders_a_summary_line() {
        let s = ModelCheckSnapshot {
            models_run: 3,
            models_failed: 1,
            iterations: 120,
            choice_points: 900,
            max_depth: 17,
        };
        let line = s.to_string();
        assert!(line.contains("3 run"));
        assert!(line.contains("1 failed"));
        assert!(line.contains("120 interleavings"));
    }
}
