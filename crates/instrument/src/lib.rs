//! Instrumentation substrate for the PLP reproduction.
//!
//! The PLP paper (Pandis et al., VLDB 2011) argues about *communication
//! patterns*: which critical sections a transaction enters, how contended they
//! are, and how much wall-clock time is lost waiting on them.  Every figure in
//! the paper's evaluation is ultimately a view over three kinds of counters:
//!
//! * **Critical-section counters** per storage-manager component
//!   (Figure 1): lock manager, page latches, buffer pool, metadata/space
//!   management, log manager, transaction manager, message passing.
//! * **Page-latch counters** per page kind (Figures 2 and 3): index pages,
//!   heap pages, catalog/space-management pages.
//! * **Per-transaction time breakdowns** (Figures 6, 7 and 10): time spent
//!   acquiring latches, waiting on contended index/heap latches, waiting on
//!   SMOs, locks, the log, and everything else.
//!
//! This crate provides those counters.  Every other crate in the workspace
//! takes a [`StatsRegistry`] handle and reports events into it; the benchmark
//! harness snapshots registries and renders the paper's tables and figures.
//!
//! The counters are plain relaxed atomics: they are updated on hot paths by
//! many threads, and the absolute precision of a counter is irrelevant — the
//! paper reports counts per transaction aggregated over millions of events.
//!
//! Beyond counters, the observability layer adds latency *distributions*
//! ([`histogram`]), per-thread event *timelines* ([`trace`]) and a bounded
//! time-series *flight recorder* with panic-time autopsy dumps ([`recorder`]).
//! See `docs/observability.md` for the metric → recording site → export
//! catalogue. Building with the `obs-stub` feature compiles histogram and
//! trace recording to no-ops; the `fig_obs` bench compares the two builds to
//! keep the default-on overhead honest.

// Denied rather than forbidden: `trace::tsc` carries the one scoped
// exception, the RDTSC intrinsic behind the trace clock (no memory access).
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod breakdown;
pub mod export;
pub mod histogram;
pub mod model;
pub mod recorder;
pub mod report;
pub mod server;
pub mod slowlog;
pub mod stats;
pub mod sync;
pub mod timer;
pub mod trace;

pub use breakdown::{BreakdownSnapshot, TimeBreakdown, TimeBucket};

/// True unless the `obs-stub` feature compiled histogram/trace recording out.
/// Inlines to a constant, so callers in other crates can write
/// `if obs_enabled() { let t0 = now_nanos(); ... }` and have the whole block
/// fold away in stubbed builds without declaring the feature themselves.
#[inline(always)]
pub const fn obs_enabled() -> bool {
    cfg!(not(feature = "obs-stub"))
}
pub use export::{
    parse_exposition, prometheus_exposition, stats_json, validate_histogram_series, MetricSample,
};
pub use histogram::{Histogram, HistogramSnapshot, LatencySnapshot, LatencyStats};
pub use model::{model_check_snapshot, ModelCheckSnapshot};
pub use recorder::{
    dump_all_targets, register_flight_dump, unregister_flight_dump, FlightRecorder, Sample,
};
pub use report::{format_table, json_is_valid, json_string_literal, Cell, Table};
pub use server::ObsServer;
pub use slowlog::{DecisionLog, DlbDecision, DlbOutcome, PhaseBreakdown, SlowLog, SlowTxn};
pub use stats::{
    ContentionClass, CsCategory, CsStats, CsStatsSnapshot, DlbStats, DlbStatsSnapshot, LatchStats,
    LatchStatsSnapshot, MsgStats, MsgStatsSnapshot, PageKind, ServerStats, ServerStatsSnapshot,
    StatsRegistry, StatsSnapshot, WalStats, WalStatsSnapshot,
};
pub use sync::{InstrumentedMutex, InstrumentedRwLock};
pub use timer::ScopedTimer;
pub use trace::{TraceEvent, TraceRecord, TraceRegistry, TraceRing, TraceScope};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registry_roundtrip() {
        let reg = Arc::new(StatsRegistry::new());
        reg.cs().enter(CsCategory::LockMgr, false);
        reg.cs().enter(CsCategory::PageLatch, true);
        reg.latches().acquired(PageKind::Index, true);
        let snap = reg.snapshot();
        assert_eq!(snap.cs.entries(CsCategory::LockMgr), 1);
        assert_eq!(snap.cs.entries(CsCategory::PageLatch), 1);
        assert_eq!(snap.cs.contended(CsCategory::PageLatch), 1);
        assert_eq!(snap.latches.acquired(PageKind::Index), 1);
    }
}
