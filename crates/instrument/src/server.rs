//! The live observability endpoint: a minimal HTTP/1.1 exposition server on
//! a std `TcpListener`.
//!
//! One background thread owns the listener and serves connections *serially*
//! — scrapes are read-only snapshots off the atomics, so a slow or stuck
//! client delays other scrapers, never the engine (bounded by the socket
//! read/write timeouts). The accept loop polls a non-blocking listener so
//! shutdown never blocks on a quiet socket.
//!
//! Routes:
//!
//! | Path | Body |
//! |---|---|
//! | `/metrics` | Prometheus text exposition ([`crate::export`]) |
//! | `/stats.json` | Counter + latency-summary JSON |
//! | `/trace.json` | chrome://tracing document of every trace ring |
//! | `/flight.json` | Flight-recorder sample ring |
//! | `/decisions.json` | DLB decision audit log |
//! | `/slow.json` | Slow-transaction reservoir |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::recorder::FlightRecorder;
use crate::stats::StatsRegistry;

/// How long a quiet accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection socket timeouts: a stalled scraper is dropped, it cannot
/// wedge the server thread (let alone a worker).
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Maximum request head accepted before the connection is dropped.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Handle to a running observability endpoint. Dropping it (or calling
/// [`stop`](ObsServer::stop)) shuts the listener thread down gracefully.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for an ephemeral port)
    /// and start serving. The bound address is available via
    /// [`addr`](ObsServer::addr).
    pub fn start(
        addr: &str,
        stats: Arc<StatsRegistry>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("plp-obsd".to_string())
            .spawn(move || serve_loop(listener, stats, recorder, stop2))?;
        Ok(ObsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the listener thread and wait for it to exit. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(
    listener: TcpListener,
    stats: Arc<StatsRegistry>,
    recorder: Option<Arc<FlightRecorder>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-connection errors (client hangup, timeout) only lose
                // that scrape; the server keeps serving.
                let _ = serve_connection(stream, &stats, recorder.as_deref());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Read the request head (start line + headers), bounded in size and time.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn serve_connection(
    mut stream: TcpStream,
    stats: &StatsRegistry,
    recorder: Option<&FlightRecorder>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_request_head(&mut stream)?;
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "plp-obsd routes: /metrics /stats.json /trace.json /flight.json \
                 /decisions.json /slow.json\n"
                    .to_string(),
            ),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::export::prometheus_exposition(
                    &stats.snapshot(),
                    &stats.latency().snapshot(),
                ),
            ),
            "/stats.json" => (
                "200 OK",
                "application/json",
                crate::export::stats_json(&stats.snapshot(), &stats.latency().snapshot()),
            ),
            "/trace.json" => ("200 OK", "application/json", stats.trace().chrome_json()),
            "/flight.json" => (
                "200 OK",
                "application/json",
                recorder.map_or_else(|| "[]".to_string(), |r| r.samples_json()),
            ),
            "/decisions.json" => ("200 OK", "application/json", stats.dlb_decisions().json()),
            "/slow.json" => ("200 OK", "application/json", stats.slow().json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no route {path}\n"),
            ),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    fn test_server() -> (ObsServer, Arc<StatsRegistry>) {
        let stats = StatsRegistry::new_shared();
        stats.txn_committed();
        stats.latency().action_roundtrip.record(1_234);
        let server = ObsServer::start("127.0.0.1:0", Arc::clone(&stats), None).expect("bind");
        (server, stats)
    }

    #[test]
    fn serves_metrics_and_json_routes() {
        let (server, stats) = test_server();
        let (status, body) = http_get(server.addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        let samples = crate::export::parse_exposition(&body).expect("valid exposition");
        crate::export::validate_histogram_series(&samples).expect("valid histograms");
        assert!(body.contains("plp_txn_committed_total 1"));

        let (status, body) = http_get(server.addr(), "/stats.json");
        assert!(status.contains("200"), "{status}");
        assert!(crate::json_is_valid(&body), "bad json: {body}");

        let (status, body) = http_get(server.addr(), "/trace.json");
        assert!(status.contains("200"), "{status}");
        assert!(crate::json_is_valid(&body), "bad json: {body}");

        let (status, body) = http_get(server.addr(), "/decisions.json");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "[]");

        stats.slow().offer(crate::slowlog::SlowTxn {
            txn_id: 7,
            started_at_nanos: 1,
            total_nanos: 99,
            actions: 1,
            phases: Default::default(),
        });
        let (status, body) = http_get(server.addr(), "/slow.json");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"txn_id\":7"), "{body}");

        // No recorder attached: the flight ring reads as empty, not an error.
        let (status, body) = http_get(server.addr(), "/flight.json");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "[]");
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let (server, _stats) = test_server();
        let (status, _) = http_get(server.addr(), "/nope");
        assert!(status.contains("404"), "{status}");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }

    #[test]
    fn stop_is_graceful_and_idempotent() {
        let (mut server, _stats) = test_server();
        let addr = server.addr();
        let (status, _) = http_get(addr, "/metrics");
        assert!(status.contains("200"));
        server.stop();
        server.stop();
        // The listener is gone: a fresh connection is refused (or, at
        // worst, immediately dropped without a response).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                assert!(!out.contains("200 OK"), "server still answering: {out}");
            }
        }
    }

    #[test]
    fn concurrent_scrapes_all_get_valid_expositions() {
        let (server, stats) = test_server();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        // A writer thread mutates counters while scrapers read.
        let writer = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    stats.txn_committed();
                    stats.latency().action_roundtrip.record(500);
                }
            })
        };
        let scrapers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let (status, body) = http_get(addr, "/metrics");
                        assert!(status.contains("200"), "{status}");
                        let samples =
                            crate::export::parse_exposition(&body).expect("valid exposition");
                        crate::export::validate_histogram_series(&samples)
                            .expect("valid histograms");
                    }
                })
            })
            .collect();
        for s in scrapers {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
