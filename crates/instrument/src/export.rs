//! Prometheus text exposition (and JSON) rendering of the engine's counters,
//! plus a small exposition parser used by the round-trip tests and the CI
//! scrape smoke.
//!
//! The exposition covers every [`StatsSnapshot`] counter family and renders
//! each latency histogram as a cumulative `_bucket{le="…"}` series straight
//! off the log-linear buckets (the `le` bound of a bucket is its inclusive
//! upper value from [`crate::histogram::bucket_range`]; empty buckets are
//! elided, which the format permits — cumulative counts stay monotone over
//! the emitted bounds).
//!
//! Metric naming follows the Prometheus conventions: `plp_` prefix,
//! `_total` suffix on counters, explicit `_nanoseconds` unit on every
//! duration (the engine's native clock; scrape-side `/ 1e9` converts).

use crate::histogram::bucket_range;
use crate::stats::{CsCategory, PageKind, StatsSnapshot};
use crate::LatencySnapshot;

/// Label-safe slug for a critical-section category.
fn cs_slug(cat: CsCategory) -> &'static str {
    match cat {
        CsCategory::LockMgr => "lock_mgr",
        CsCategory::PageLatch => "page_latch",
        CsCategory::Bpool => "bpool",
        CsCategory::Metadata => "metadata",
        CsCategory::LogMgr => "log_mgr",
        CsCategory::XctMgr => "xct_mgr",
        CsCategory::MessagePassing => "message_passing",
        CsCategory::Uncategorized => "uncategorized",
    }
}

/// Label-safe slug for a page kind.
fn latch_slug(kind: PageKind) -> &'static str {
    match kind {
        PageKind::Index => "index",
        PageKind::Heap => "heap",
        PageKind::CatalogSpace => "catalog_space",
    }
}

/// Upper bounds of the legacy actions-per-batch buckets (2 / 3–4 / 5–8 /
/// 9–16 / 17+), as `bucket` label values.
const BATCH_BUCKET_LABELS: [&str; 5] = ["le_2", "3_4", "5_8", "9_16", "ge_17"];

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

struct Exposition {
    out: String,
}

impl Exposition {
    fn new() -> Self {
        Self {
            out: String::with_capacity(16 * 1024),
        }
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample(name, &[], &value.to_string());
    }

    fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, "gauge", help);
        self.sample(name, &[], &fmt_f64(value));
    }

    fn gauge_u64(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "gauge", help);
        self.sample(name, &[], &value.to_string());
    }
}

/// Render a [`StatsSnapshot`] plus the latency histograms in the Prometheus
/// text exposition format (version 0.0.4).
pub fn prometheus_exposition(stats: &StatsSnapshot, latency: &LatencySnapshot) -> String {
    let mut e = Exposition::new();

    e.counter(
        "plp_txn_committed_total",
        "Transactions committed.",
        stats.committed,
    );
    e.counter(
        "plp_txn_aborted_total",
        "Transactions aborted.",
        stats.aborted,
    );
    e.counter(
        "plp_smo_total",
        "Structure-modification operations performed.",
        stats.smo_count,
    );
    e.counter(
        "plp_smo_wait_nanoseconds_total",
        "Time spent waiting to enter an SMO.",
        stats.smo_wait_nanos,
    );

    e.family(
        "plp_cs_entries_total",
        "counter",
        "Critical-section entries by storage-manager component.",
    );
    for cat in CsCategory::ALL {
        e.sample(
            "plp_cs_entries_total",
            &[
                ("category", cs_slug(cat)),
                ("class", cat.contention_class().name()),
            ],
            &stats.cs.entries(cat).to_string(),
        );
    }
    e.family(
        "plp_cs_contended_total",
        "counter",
        "Contended critical-section entries by component.",
    );
    for cat in CsCategory::ALL {
        e.sample(
            "plp_cs_contended_total",
            &[
                ("category", cs_slug(cat)),
                ("class", cat.contention_class().name()),
            ],
            &stats.cs.contended(cat).to_string(),
        );
    }

    e.family(
        "plp_latch_acquired_total",
        "counter",
        "Page-latch acquisitions by page kind.",
    );
    for kind in PageKind::ALL {
        e.sample(
            "plp_latch_acquired_total",
            &[("kind", latch_slug(kind))],
            &stats.latches.acquired(kind).to_string(),
        );
    }
    e.family(
        "plp_latch_contended_total",
        "counter",
        "Contended page-latch acquisitions by page kind.",
    );
    for kind in PageKind::ALL {
        e.sample(
            "plp_latch_contended_total",
            &[("kind", latch_slug(kind))],
            &stats.latches.contended(kind).to_string(),
        );
    }
    e.family(
        "plp_latch_bypassed_total",
        "counter",
        "Latch acquisitions skipped by latch-free PLP owner access.",
    );
    for kind in PageKind::ALL {
        e.sample(
            "plp_latch_bypassed_total",
            &[("kind", latch_slug(kind))],
            &stats.latches.bypassed(kind).to_string(),
        );
    }
    e.family(
        "plp_latch_wait_nanoseconds_total",
        "counter",
        "Time spent waiting on contended page latches by page kind.",
    );
    for kind in PageKind::ALL {
        e.sample(
            "plp_latch_wait_nanoseconds_total",
            &[("kind", latch_slug(kind))],
            &stats.latches.wait_nanos(kind).to_string(),
        );
    }

    e.counter(
        "plp_dlb_evaluations_total",
        "DLB controller evaluation rounds.",
        stats.dlb.evaluations,
    );
    e.counter(
        "plp_dlb_decay_rounds_total",
        "DLB histogram aging rounds.",
        stats.dlb.decay_rounds,
    );
    e.counter(
        "plp_dlb_repartitions_total",
        "Repartitions the DLB controller triggered.",
        stats.dlb.repartitions_triggered,
    );
    e.family(
        "plp_dlb_skipped_total",
        "counter",
        "DLB evaluations that did not repartition, by reason.",
    );
    for (reason, n) in [
        ("balanced", stats.dlb.skipped_balanced),
        ("cost", stats.dlb.skipped_cost),
        ("cooldown", stats.dlb.skipped_cooldown),
    ] {
        e.sample(
            "plp_dlb_skipped_total",
            &[("reason", reason)],
            &n.to_string(),
        );
    }
    e.counter(
        "plp_dlb_repartitions_failed_total",
        "Controller-triggered repartitions that failed.",
        stats.dlb.repartitions_failed,
    );
    e.counter(
        "plp_dlb_rollbacks_total",
        "Failed repartitions rolled back from the journal.",
        stats.dlb.rollbacks,
    );
    e.gauge_f64(
        "plp_dlb_observed_imbalance",
        "Most recent observed partition-load imbalance (max/mean).",
        stats.dlb.observed_imbalance,
    );
    e.gauge_f64(
        "plp_dlb_predicted_imbalance",
        "Imbalance the last accepted plan predicted after repartitioning.",
        stats.dlb.predicted_imbalance,
    );

    e.counter(
        "plp_wal_flush_batches_total",
        "Non-empty group-commit batches flushed.",
        stats.wal.flush_batches,
    );
    e.counter(
        "plp_wal_flushed_records_total",
        "Log records written across all flush batches.",
        stats.wal.flushed_records,
    );
    e.counter(
        "plp_wal_flushed_bytes_total",
        "Log bytes written to the device.",
        stats.wal.flushed_bytes,
    );
    e.counter(
        "plp_wal_fsyncs_total",
        "fsync calls issued on log segments.",
        stats.wal.fsyncs,
    );
    e.counter(
        "plp_wal_checkpoints_total",
        "Fuzzy checkpoint records written.",
        stats.wal.checkpoints,
    );
    e.gauge_u64(
        "plp_wal_recovered_txns",
        "Committed transactions replayed by the last recovery.",
        stats.wal.recovered_txns,
    );
    e.gauge_u64(
        "plp_wal_recovered_records",
        "Redo records replayed by the last recovery.",
        stats.wal.recovered_records,
    );
    e.gauge_u64(
        "plp_wal_torn_bytes",
        "Torn-tail bytes discarded by the last recovery.",
        stats.wal.torn_bytes,
    );

    e.counter(
        "plp_msg_actions_total",
        "Action round trips measured.",
        stats.msg.actions,
    );
    e.counter(
        "plp_msg_roundtrip_nanoseconds_total",
        "Total coordinator-observed round-trip time.",
        stats.msg.roundtrip_nanos,
    );
    e.counter(
        "plp_msg_reply_reuses_total",
        "Reply rendezvous taken from the session pool.",
        stats.msg.reply_reuses,
    );
    e.counter(
        "plp_msg_reply_allocs_total",
        "Reply rendezvous freshly allocated.",
        stats.msg.reply_allocs,
    );
    e.counter(
        "plp_msg_enqueue_spins_total",
        "Producer-side queue retry rounds.",
        stats.msg.enqueue_spins,
    );
    e.counter(
        "plp_msg_dequeue_spins_total",
        "Consumer-side queue retry rounds.",
        stats.msg.dequeue_spins,
    );
    e.counter(
        "plp_msg_parks_total",
        "Threads that exhausted the spin budget and blocked.",
        stats.msg.parks,
    );
    e.counter(
        "plp_msg_wakeups_total",
        "Wakeups actually issued.",
        stats.msg.wakeups,
    );
    e.counter(
        "plp_msg_batches_total",
        "Batched dispatches sent.",
        stats.msg.batches,
    );
    e.counter(
        "plp_msg_batch_actions_total",
        "Actions carried inside batched dispatches.",
        stats.msg.batch_actions,
    );
    e.family(
        "plp_msg_batch_size_total",
        "counter",
        "Batched dispatches by actions-per-batch bucket.",
    );
    for (label, n) in BATCH_BUCKET_LABELS
        .iter()
        .zip(stats.msg.batch_size_buckets.iter())
    {
        e.sample(
            "plp_msg_batch_size_total",
            &[("bucket", label)],
            &n.to_string(),
        );
    }
    e.counter(
        "plp_msg_lane_hits_total",
        "Dispatches that took an SPSC fast lane.",
        stats.msg.lane_hits,
    );
    e.counter(
        "plp_msg_lane_fallbacks_total",
        "Dispatches that fell back to the shared MPMC queue.",
        stats.msg.lane_fallbacks,
    );

    e.counter(
        "plp_server_connections_accepted_total",
        "Client connections accepted by the network front end.",
        stats.server.connections_accepted,
    );
    e.counter(
        "plp_server_connections_closed_total",
        "Client connections closed.",
        stats.server.connections_closed,
    );
    e.gauge_u64(
        "plp_server_active_connections",
        "Client connections currently open.",
        stats.server.active_connections(),
    );
    e.counter(
        "plp_server_frames_decoded_total",
        "Request frames decoded successfully.",
        stats.server.frames_decoded,
    );
    e.counter(
        "plp_server_decode_errors_total",
        "Frames rejected by the decoder (connection kept alive).",
        stats.server.decode_errors,
    );
    e.counter(
        "plp_server_responses_sent_total",
        "Response frames written back to clients.",
        stats.server.responses_sent,
    );
    e.counter(
        "plp_server_bytes_in_total",
        "Frame bytes read off client sockets.",
        stats.server.bytes_in,
    );
    e.counter(
        "plp_server_bytes_out_total",
        "Frame bytes written back to clients.",
        stats.server.bytes_out,
    );

    for (name, h) in latency.named() {
        let family = format!("plp_latency_{name}_nanoseconds");
        e.family(&family, "histogram", "Engine latency histogram (ns).");
        let bucket = format!("{family}_bucket");
        let mut cumulative = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            let (_, hi) = bucket_range(i);
            e.sample(&bucket, &[("le", &hi.to_string())], &cumulative.to_string());
        }
        e.sample(&bucket, &[("le", "+Inf")], &h.count.to_string());
        e.sample(&format!("{family}_sum"), &[], &h.sum.to_string());
        e.sample(&format!("{family}_count"), &[], &h.count.to_string());
    }

    e.out
}

/// One parsed exposition sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl MetricSample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad value {other:?}: {e}")),
    }
}

/// Parse one `name{labels} value` sample line.
fn parse_sample_line(line: &str) -> Result<MetricSample, String> {
    let (name, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(format!("no value on line {line:?}")),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| format!("unclosed label set on line {line:?}"))?;
        // The exposition this crate emits never escapes `}` or `,` inside
        // label values, so splitting on them is exact here.
        let label_body = &body[..close];
        if !label_body.is_empty() {
            for pair in label_body.split(',') {
                let eq = pair
                    .find('=')
                    .ok_or_else(|| format!("label without '=' in {line:?}"))?;
                let key = &pair[..eq];
                let raw = &pair[eq + 1..];
                if !valid_metric_name(key) {
                    return Err(format!("invalid label name {key:?}"));
                }
                let raw = raw
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in {line:?}"))?;
                let mut value = String::new();
                let mut chars = raw.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            other => return Err(format!("bad escape {other:?} in {line:?}")),
                        }
                    } else {
                        value.push(c);
                    }
                }
                labels.push((key.to_string(), value));
            }
        }
        &body[close + 1..]
    } else {
        rest
    };
    let mut fields = rest.split_whitespace();
    let value = parse_value(
        fields
            .next()
            .ok_or_else(|| format!("no value in {line:?}"))?,
    )?;
    // An optional trailing timestamp (integer milliseconds) is allowed.
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|e| format!("bad timestamp {ts:?}: {e}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage in {line:?}"));
    }
    Ok(MetricSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parse and validate a Prometheus text exposition document (format 0.0.4):
/// every line must be empty, a well-formed `# HELP` / `# TYPE` comment, or a
/// well-formed sample. Returns the samples in document order.
pub fn parse_exposition(text: &str) -> Result<Vec<MetricSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut fields = rest.split_whitespace();
                let name = fields.next().ok_or("TYPE without metric name")?;
                if !valid_metric_name(name) {
                    return Err(format!("TYPE names invalid metric {name:?}"));
                }
                let kind = fields.next().ok_or("TYPE without kind")?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("unknown TYPE kind {kind:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().ok_or("HELP without name")?;
                if !valid_metric_name(name) {
                    return Err(format!("HELP names invalid metric {name:?}"));
                }
            }
            // Other comments are permitted free text.
            continue;
        }
        samples.push(parse_sample_line(line)?);
    }
    Ok(samples)
}

/// Cross-check every histogram family in a parsed exposition: `le` bounds
/// strictly ascending, cumulative bucket counts non-decreasing, and the
/// `+Inf` bucket equal to the `_count` sample. Returns the number of
/// histogram families checked.
pub fn validate_histogram_series(samples: &[MetricSample]) -> Result<usize, String> {
    let mut families = 0usize;
    let mut i = 0;
    while i < samples.len() {
        let s = &samples[i];
        let Some(base) = s.name.strip_suffix("_bucket").map(str::to_string) else {
            i += 1;
            continue;
        };
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0f64;
        let mut inf_value = None;
        while i < samples.len() && samples[i].name == format!("{base}_bucket") {
            let b = &samples[i];
            let le = parse_value(
                b.label("le")
                    .ok_or_else(|| format!("{base}: bucket without le"))?,
            )?;
            if le <= prev_le {
                return Err(format!("{base}: le bounds not ascending at {le}"));
            }
            if b.value < prev_cum {
                return Err(format!("{base}: cumulative count decreased at le={le}"));
            }
            prev_le = le;
            prev_cum = b.value;
            if le.is_infinite() {
                inf_value = Some(b.value);
            }
            i += 1;
        }
        let inf = inf_value.ok_or_else(|| format!("{base}: no +Inf bucket"))?;
        let sum = samples
            .get(i)
            .filter(|s| s.name == format!("{base}_sum"))
            .ok_or_else(|| format!("{base}: missing _sum after buckets"))?;
        let count = samples
            .get(i + 1)
            .filter(|s| s.name == format!("{base}_count"))
            .ok_or_else(|| format!("{base}: missing _count after _sum"))?;
        if count.value != inf {
            return Err(format!(
                "{base}: +Inf bucket {} != _count {}",
                inf, count.value
            ));
        }
        if count.value == 0.0 && sum.value != 0.0 {
            return Err(format!("{base}: zero count but non-zero sum"));
        }
        i += 2;
        families += 1;
    }
    Ok(families)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the counters and latency summaries as a JSON document (the
/// `/stats.json` endpoint body).
pub fn stats_json(stats: &StatsSnapshot, latency: &LatencySnapshot) -> String {
    let mut out = String::with_capacity(4 * 1024);
    out.push('{');
    out.push_str(&format!(
        "\"committed\":{},\"aborted\":{},\"smo_count\":{},\"smo_wait_nanos\":{},",
        stats.committed, stats.aborted, stats.smo_count, stats.smo_wait_nanos
    ));
    out.push_str("\"cs\":{");
    for (i, cat) in CsCategory::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"entries\":{},\"contended\":{}}}",
            cs_slug(*cat),
            stats.cs.entries(*cat),
            stats.cs.contended(*cat)
        ));
    }
    out.push_str("},\"latches\":{");
    for (i, kind) in PageKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"acquired\":{},\"contended\":{},\"bypassed\":{},\"wait_nanos\":{}}}",
            latch_slug(*kind),
            stats.latches.acquired(*kind),
            stats.latches.contended(*kind),
            stats.latches.bypassed(*kind),
            stats.latches.wait_nanos(*kind)
        ));
    }
    out.push_str(&format!(
        "}},\"dlb\":{{\"evaluations\":{},\"decay_rounds\":{},\"repartitions_triggered\":{},\
         \"skipped_balanced\":{},\"skipped_cost\":{},\"skipped_cooldown\":{},\
         \"repartitions_failed\":{},\"rollbacks\":{},\"observed_imbalance\":{},\
         \"predicted_imbalance\":{}}},",
        stats.dlb.evaluations,
        stats.dlb.decay_rounds,
        stats.dlb.repartitions_triggered,
        stats.dlb.skipped_balanced,
        stats.dlb.skipped_cost,
        stats.dlb.skipped_cooldown,
        stats.dlb.repartitions_failed,
        stats.dlb.rollbacks,
        json_f64(stats.dlb.observed_imbalance),
        json_f64(stats.dlb.predicted_imbalance)
    ));
    out.push_str(&format!(
        "\"wal\":{{\"flush_batches\":{},\"flushed_records\":{},\"flushed_bytes\":{},\
         \"fsyncs\":{},\"checkpoints\":{},\"recovered_txns\":{},\"recovered_records\":{},\
         \"torn_bytes\":{}}},",
        stats.wal.flush_batches,
        stats.wal.flushed_records,
        stats.wal.flushed_bytes,
        stats.wal.fsyncs,
        stats.wal.checkpoints,
        stats.wal.recovered_txns,
        stats.wal.recovered_records,
        stats.wal.torn_bytes
    ));
    out.push_str(&format!(
        "\"msg\":{{\"actions\":{},\"roundtrip_nanos\":{},\"reply_reuses\":{},\
         \"reply_allocs\":{},\"parks\":{},\"wakeups\":{},\"batches\":{},\"batch_actions\":{},\
         \"lane_hits\":{},\"lane_fallbacks\":{}}},",
        stats.msg.actions,
        stats.msg.roundtrip_nanos,
        stats.msg.reply_reuses,
        stats.msg.reply_allocs,
        stats.msg.parks,
        stats.msg.wakeups,
        stats.msg.batches,
        stats.msg.batch_actions,
        stats.msg.lane_hits,
        stats.msg.lane_fallbacks
    ));
    out.push_str(&format!(
        "\"server\":{{\"connections_accepted\":{},\"connections_closed\":{},\
         \"active_connections\":{},\"frames_decoded\":{},\"decode_errors\":{},\
         \"responses_sent\":{},\"bytes_in\":{},\"bytes_out\":{}}},",
        stats.server.connections_accepted,
        stats.server.connections_closed,
        stats.server.active_connections(),
        stats.server.frames_decoded,
        stats.server.decode_errors,
        stats.server.responses_sent,
        stats.server.bytes_in,
        stats.server.bytes_out
    ));
    out.push_str("\"latency\":[");
    let mut first = true;
    for (name, h) in latency.named() {
        if h.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            crate::json_string_literal(name),
            h.count,
            h.sum,
            json_f64(h.mean()),
            h.p50(),
            h.p99(),
            h.max
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencyStats, StatsRegistry};

    fn populated_registry() -> StatsRegistry {
        let r = StatsRegistry::new();
        r.txn_committed();
        r.txn_committed();
        r.txn_aborted();
        r.cs().enter(CsCategory::LockMgr, true);
        r.cs().enter(CsCategory::MessagePassing, false);
        r.latches().acquired(PageKind::Index, true);
        r.latches().waited(PageKind::Index, 500);
        r.dlb().evaluation();
        r.dlb().set_observed_imbalance(1.75);
        r.wal().flushed(3, 96);
        r.wal().fsync();
        r.msg().roundtrip(1_500);
        r.msg().batch_sent(4, true);
        r.server().connection_accepted();
        r.server().connection_accepted();
        r.server().connection_closed();
        r.server().frame_decoded(48);
        r.server().decode_error(16);
        r.server().response_sent(52);
        r.smo_performed(250);
        for v in [100u64, 1_000, 10_000, 100_000] {
            r.latency().action_roundtrip.record(v);
            r.latency().phase_execute.record(v / 2);
        }
        r
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let r = populated_registry();
        let text = prometheus_exposition(&r.snapshot(), &r.latency().snapshot());
        let samples = parse_exposition(&text).expect("exposition parses");
        let get = |name: &str| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(get("plp_txn_committed_total"), 2.0);
        assert_eq!(get("plp_txn_aborted_total"), 1.0);
        assert_eq!(get("plp_msg_actions_total"), 1.0);
        assert_eq!(get("plp_msg_roundtrip_nanoseconds_total"), 1_500.0);
        assert_eq!(get("plp_smo_wait_nanoseconds_total"), 250.0);
        assert_eq!(get("plp_dlb_observed_imbalance"), 1.75);
        assert_eq!(get("plp_server_connections_accepted_total"), 2.0);
        assert_eq!(get("plp_server_active_connections"), 1.0);
        assert_eq!(get("plp_server_frames_decoded_total"), 1.0);
        assert_eq!(get("plp_server_decode_errors_total"), 1.0);
        assert_eq!(get("plp_server_bytes_in_total"), 64.0);
        assert_eq!(get("plp_server_bytes_out_total"), 52.0);
        let lockmgr = samples
            .iter()
            .find(|s| s.name == "plp_cs_contended_total" && s.label("category") == Some("lock_mgr"))
            .expect("lock_mgr sample");
        assert_eq!(lockmgr.value, 1.0);
        assert_eq!(lockmgr.label("class"), Some("unscalable"));
        let batch = samples
            .iter()
            .find(|s| s.name == "plp_msg_batch_size_total" && s.label("bucket") == Some("3_4"))
            .expect("batch bucket sample");
        assert_eq!(batch.value, 1.0);
    }

    #[test]
    fn histogram_series_are_cumulative_and_reconcile() {
        let r = populated_registry();
        let text = prometheus_exposition(&r.snapshot(), &r.latency().snapshot());
        let samples = parse_exposition(&text).expect("parses");
        let families = validate_histogram_series(&samples).expect("histogram series valid");
        // Every latency histogram is emitted, recorded or not.
        assert_eq!(families, r.latency().snapshot().named().len());
        let count = samples
            .iter()
            .find(|s| s.name == "plp_latency_action_roundtrip_nanoseconds_count")
            .expect("count sample");
        assert_eq!(count.value, 4.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "plp_latency_action_roundtrip_nanoseconds_sum")
            .expect("sum sample");
        assert_eq!(sum.value, 111_100.0);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_exposition("plp_ok 1\n").is_ok());
        assert!(parse_exposition("1bad_name 1\n").is_err());
        assert!(parse_exposition("plp_ok notanumber\n").is_err());
        assert!(parse_exposition("plp_ok{unclosed=\"x\" 1\n").is_err());
        assert!(parse_exposition("plp_ok{k=unquoted} 1\n").is_err());
        assert!(parse_exposition("# TYPE plp_ok frobnicator\n").is_err());
        assert!(
            parse_exposition("plp_ok 1 123456\n").is_ok(),
            "timestamps allowed"
        );
        assert!(parse_exposition("plp_ok 1 12 extra\n").is_err());
        let esc = parse_exposition("m{k=\"a\\\"b\\\\c\\nd\"} 2\n").unwrap();
        assert_eq!(esc[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn validator_catches_broken_histograms() {
        let broken = "\
h_bucket{le=\"10\"} 5\n\
h_bucket{le=\"20\"} 3\n\
h_bucket{le=\"+Inf\"} 5\n\
h_sum 50\n\
h_count 5\n";
        let samples = parse_exposition(broken).unwrap();
        assert!(validate_histogram_series(&samples)
            .unwrap_err()
            .contains("decreased"));
        let mismatched = "\
h_bucket{le=\"+Inf\"} 5\n\
h_sum 50\n\
h_count 6\n";
        let samples = parse_exposition(mismatched).unwrap();
        assert!(validate_histogram_series(&samples)
            .unwrap_err()
            .contains("_count"));
    }

    #[test]
    fn stats_json_is_valid_json() {
        let r = populated_registry();
        let json = stats_json(&r.snapshot(), &r.latency().snapshot());
        assert!(crate::json_is_valid(&json), "bad json: {json}");
        assert!(json.contains("\"committed\":2"));
        assert!(json.contains("\"lock_mgr\""));
        assert!(json.contains("\"action_roundtrip\""));
        assert!(json.contains("\"server\":{\"connections_accepted\":2"));
        assert!(json.contains("\"active_connections\":1"));
        // Empty registries also serialize cleanly.
        let empty = StatsRegistry::new();
        let json = stats_json(&empty.snapshot(), &LatencyStats::default().snapshot());
        assert!(crate::json_is_valid(&json), "bad json: {json}");
    }
}
