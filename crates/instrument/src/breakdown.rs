//! Per-transaction wall-clock time breakdowns (Figures 6, 7 and 10).
//!
//! The paper profiles where transaction time goes: acquiring latches
//! (uncontended cost), waiting on *contended* index or heap latches, waiting
//! on structure-modification operations, waiting on locks, waiting on the log,
//! and "other" (useful work).  A [`TimeBreakdown`] accumulates nanoseconds per
//! bucket across all transactions of a run; dividing by the number of
//! committed transactions reproduces the per-transaction stacked bars.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A bucket of the per-transaction time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum TimeBucket {
    /// Cost of acquiring (uncontended) page latches.
    Latching = 0,
    /// Time spent waiting on contended index-page latches.
    IdxLatchContention = 1,
    /// Time spent waiting on contended heap-page latches.
    HeapLatchContention = 2,
    /// Time blocked behind structure-modification operations (SMO mutex).
    SmoWait = 3,
    /// Time spent waiting for database locks.
    LockWait = 4,
    /// Time spent in the log manager (insert + commit flush wait).
    LogWait = 5,
    /// Everything else: the useful work of the transaction.
    Other = 6,
}

impl TimeBucket {
    pub const ALL: [TimeBucket; 7] = [
        TimeBucket::Latching,
        TimeBucket::IdxLatchContention,
        TimeBucket::HeapLatchContention,
        TimeBucket::SmoWait,
        TimeBucket::LockWait,
        TimeBucket::LogWait,
        TimeBucket::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TimeBucket::Latching => "Latching",
            TimeBucket::IdxLatchContention => "Idx Latch Cont.",
            TimeBucket::HeapLatchContention => "Heap Latch Cont.",
            TimeBucket::SmoWait => "SMO wait",
            TimeBucket::LockWait => "Lock wait",
            TimeBucket::LogWait => "Log wait",
            TimeBucket::Other => "Other",
        }
    }
}

const N_BUCKETS: usize = 7;

/// Accumulated nanoseconds per [`TimeBucket`] plus a transaction count.
#[derive(Debug, Default)]
pub struct TimeBreakdown {
    nanos: [AtomicU64; N_BUCKETS],
    txns: AtomicU64,
}

impl TimeBreakdown {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, bucket: TimeBucket, d: Duration) {
        self.nanos[bucket as usize].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_nanos(&self, bucket: TimeBucket, nanos: u64) {
        self.nanos[bucket as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record that one more transaction contributed to the breakdown.  The
    /// `total` duration of the transaction is attributed to [`TimeBucket::Other`]
    /// *minus* whatever has been recorded in the explicit buckets is computed at
    /// snapshot time, so callers simply pass the wall-clock transaction time.
    #[inline]
    pub fn finish_txn(&self, total: Duration) {
        self.txns.fetch_add(1, Ordering::Relaxed);
        self.nanos[TimeBucket::Other as usize]
            .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> BreakdownSnapshot {
        let mut nanos = [0u64; N_BUCKETS];
        for (out, counter) in nanos.iter_mut().zip(&self.nanos) {
            *out = counter.load(Ordering::Relaxed);
        }
        // "Other" was accumulated as *total* transaction time; subtract the
        // explicitly-attributed buckets so the stack adds up to the total.
        let explicit: u64 = nanos[..N_BUCKETS - 1].iter().sum();
        nanos[TimeBucket::Other as usize] =
            nanos[TimeBucket::Other as usize].saturating_sub(explicit);
        BreakdownSnapshot {
            nanos,
            txns: self.txns.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for i in 0..N_BUCKETS {
            self.nanos[i].store(0, Ordering::Relaxed);
        }
        self.txns.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of a [`TimeBreakdown`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakdownSnapshot {
    nanos: [u64; N_BUCKETS],
    txns: u64,
}

impl BreakdownSnapshot {
    pub fn nanos(&self, bucket: TimeBucket) -> u64 {
        self.nanos[bucket as usize]
    }

    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Microseconds spent in `bucket` per committed transaction.
    pub fn micros_per_txn(&self, bucket: TimeBucket) -> f64 {
        self.nanos[bucket as usize] as f64 / 1_000.0 / self.txns.max(1) as f64
    }

    /// Total microseconds per transaction across all buckets.
    pub fn total_micros_per_txn(&self) -> f64 {
        TimeBucket::ALL
            .iter()
            .map(|&b| self.micros_per_txn(b))
            .sum()
    }

    /// Fraction of total time spent in `bucket` (0.0 if nothing recorded).
    pub fn fraction(&self, bucket: TimeBucket) -> f64 {
        let total: u64 = self.nanos.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.nanos[bucket as usize] as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_sum_to_total() {
        let b = TimeBreakdown::new();
        b.add(TimeBucket::IdxLatchContention, Duration::from_micros(30));
        b.add(TimeBucket::Latching, Duration::from_micros(10));
        b.finish_txn(Duration::from_micros(100));
        let s = b.snapshot();
        assert_eq!(s.txns(), 1);
        assert_eq!(s.nanos(TimeBucket::IdxLatchContention), 30_000);
        assert_eq!(s.nanos(TimeBucket::Latching), 10_000);
        // other = 100 - 30 - 10 = 60 micros
        assert_eq!(s.nanos(TimeBucket::Other), 60_000);
        assert!((s.total_micros_per_txn() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn other_never_goes_negative() {
        let b = TimeBreakdown::new();
        b.add(TimeBucket::LockWait, Duration::from_micros(500));
        b.finish_txn(Duration::from_micros(100));
        let s = b.snapshot();
        assert_eq!(s.nanos(TimeBucket::Other), 0);
    }

    #[test]
    fn fractions() {
        let b = TimeBreakdown::new();
        b.add(TimeBucket::HeapLatchContention, Duration::from_micros(50));
        b.finish_txn(Duration::from_micros(100));
        let s = b.snapshot();
        assert!((s.fraction(TimeBucket::HeapLatchContention) - 0.5).abs() < 1e-9);
        assert!((s.fraction(TimeBucket::Other) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = TimeBreakdown::new();
        let s = b.snapshot();
        assert_eq!(s.txns(), 0);
        assert_eq!(s.total_micros_per_txn(), 0.0);
        assert_eq!(s.fraction(TimeBucket::Other), 0.0);
    }

    #[test]
    fn reset_clears() {
        let b = TimeBreakdown::new();
        b.finish_txn(Duration::from_micros(10));
        b.reset();
        let s = b.snapshot();
        assert_eq!(s.txns(), 0);
        assert_eq!(s.nanos(TimeBucket::Other), 0);
    }
}
