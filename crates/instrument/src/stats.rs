//! Critical-section and page-latch counters.
//!
//! The categories mirror the breakdown used in Figure 1 of the paper ("CSs per
//! transaction" by originating storage-manager service) and the page-kind
//! breakdown used in Figures 2 and 3.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The storage-manager component that owns a critical section.
///
/// These are exactly the categories of Figure 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum CsCategory {
    /// Centralized lock-manager critical sections (lock-head buckets, queues).
    LockMgr = 0,
    /// Page-latch acquisitions (index, heap and catalog pages).
    PageLatch = 1,
    /// Buffer-pool critical sections (frame-table buckets, cleaner handshakes).
    Bpool = 2,
    /// Catalog, free-space and other metadata latching.
    Metadata = 3,
    /// Log-manager critical sections (log-buffer inserts, flush handshakes).
    LogMgr = 4,
    /// Transaction-manager critical sections (txn object state transitions).
    XctMgr = 5,
    /// Message passing between the partition manager and worker threads.
    MessagePassing = 6,
    /// Everything else.
    Uncategorized = 7,
}

impl CsCategory {
    pub const ALL: [CsCategory; 8] = [
        CsCategory::LockMgr,
        CsCategory::PageLatch,
        CsCategory::Bpool,
        CsCategory::Metadata,
        CsCategory::LogMgr,
        CsCategory::XctMgr,
        CsCategory::MessagePassing,
        CsCategory::Uncategorized,
    ];

    /// The contention class the paper assigns to this kind of communication
    /// (Section 2.1).
    pub fn contention_class(self) -> ContentionClass {
        match self {
            CsCategory::LockMgr => ContentionClass::Unscalable,
            CsCategory::PageLatch => ContentionClass::Unscalable,
            CsCategory::Bpool => ContentionClass::Fixed,
            CsCategory::Metadata => ContentionClass::Unscalable,
            CsCategory::LogMgr => ContentionClass::Composable,
            CsCategory::XctMgr => ContentionClass::Fixed,
            CsCategory::MessagePassing => ContentionClass::Fixed,
            CsCategory::Uncategorized => ContentionClass::Unscalable,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CsCategory::LockMgr => "Lock mgr",
            CsCategory::PageLatch => "Page Latches",
            CsCategory::Bpool => "Bpool",
            CsCategory::Metadata => "Metadata",
            CsCategory::LogMgr => "Log mgr",
            CsCategory::XctMgr => "Xct mgr",
            CsCategory::MessagePassing => "Message passing",
            CsCategory::Uncategorized => "Uncategorized",
        }
    }
}

impl fmt::Display for CsCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The contention behaviour of a critical section (Section 2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentionClass {
    /// Contention independent of hardware parallelism (e.g. producer/consumer
    /// pairs, transaction-object state transitions).
    Fixed,
    /// Threads can aggregate their operations while queueing (e.g. Aether-style
    /// consolidated log inserts).
    Composable,
    /// Contention grows with the number of threads; these become bottlenecks.
    Unscalable,
}

impl ContentionClass {
    pub fn name(self) -> &'static str {
        match self {
            ContentionClass::Fixed => "fixed",
            ContentionClass::Composable => "composable",
            ContentionClass::Unscalable => "unscalable",
        }
    }
}

/// The kind of database page a latch protects (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum PageKind {
    /// B+Tree / MRBTree interior and leaf pages.
    Index = 0,
    /// Heap-file pages holding non-clustered records.
    Heap = 1,
    /// Catalog, routing (partition-table) and free-space-management pages.
    CatalogSpace = 2,
}

impl PageKind {
    pub const ALL: [PageKind; 3] = [PageKind::Index, PageKind::Heap, PageKind::CatalogSpace];

    pub fn name(self) -> &'static str {
        match self {
            PageKind::Index => "INDEX",
            PageKind::Heap => "HEAP",
            PageKind::CatalogSpace => "CATALOG/SPACE",
        }
    }

    /// The critical-section category a latch on this page kind reports under.
    pub fn cs_category(self) -> CsCategory {
        match self {
            PageKind::Index | PageKind::Heap => CsCategory::PageLatch,
            PageKind::CatalogSpace => CsCategory::Metadata,
        }
    }
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const N_CATEGORIES: usize = 8;
const N_PAGE_KINDS: usize = 3;

/// Critical-section entry counters, one slot per [`CsCategory`].
#[derive(Debug, Default)]
pub struct CsStats {
    entries: [AtomicU64; N_CATEGORIES],
    contended: [AtomicU64; N_CATEGORIES],
}

impl CsStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record entry into a critical section.  `contended` means the thread had
    /// to wait (the try-acquire failed and it fell back to blocking).
    #[inline]
    pub fn enter(&self, cat: CsCategory, contended: bool) {
        self.entries[cat as usize].fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended[cat as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record `n` entries at once (used by composable critical sections where
    /// one thread performs work on behalf of many).
    #[inline]
    pub fn enter_n(&self, cat: CsCategory, n: u64, contended: bool) {
        self.entries[cat as usize].fetch_add(n, Ordering::Relaxed);
        if contended {
            self.contended[cat as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> CsStatsSnapshot {
        let mut entries = [0u64; N_CATEGORIES];
        let mut contended = [0u64; N_CATEGORIES];
        for i in 0..N_CATEGORIES {
            entries[i] = self.entries[i].load(Ordering::Relaxed);
            contended[i] = self.contended[i].load(Ordering::Relaxed);
        }
        CsStatsSnapshot { entries, contended }
    }

    pub fn reset(&self) {
        for i in 0..N_CATEGORIES {
            self.entries[i].store(0, Ordering::Relaxed);
            self.contended[i].store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of [`CsStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsStatsSnapshot {
    entries: [u64; N_CATEGORIES],
    contended: [u64; N_CATEGORIES],
}

impl CsStatsSnapshot {
    pub fn entries(&self, cat: CsCategory) -> u64 {
        self.entries[cat as usize]
    }

    pub fn contended(&self, cat: CsCategory) -> u64 {
        self.contended[cat as usize]
    }

    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    pub fn total_contended(&self) -> u64 {
        self.contended.iter().sum()
    }

    /// Total entries into critical sections whose contention class is
    /// "unscalable" — the quantity PLP sets out to minimise.
    pub fn unscalable_entries(&self) -> u64 {
        CsCategory::ALL
            .iter()
            .filter(|c| c.contention_class() == ContentionClass::Unscalable)
            .map(|&c| self.entries(c))
            .sum()
    }

    /// Contended entries into unscalable critical sections — the paper's
    /// headline "contentious critical sections" metric.
    pub fn contentious(&self) -> u64 {
        CsCategory::ALL
            .iter()
            .filter(|c| c.contention_class() == ContentionClass::Unscalable)
            .map(|&c| self.contended(c))
            .sum()
    }

    /// Difference between two snapshots (`self - earlier`), saturating at zero.
    pub fn delta(&self, earlier: &CsStatsSnapshot) -> CsStatsSnapshot {
        let mut out = CsStatsSnapshot::default();
        for i in 0..N_CATEGORIES {
            out.entries[i] = self.entries[i].saturating_sub(earlier.entries[i]);
            out.contended[i] = self.contended[i].saturating_sub(earlier.contended[i]);
        }
        out
    }

    /// Scale every counter by `1 / divisor` producing per-transaction floats.
    pub fn per_txn(&self, divisor: u64) -> Vec<(CsCategory, f64, f64)> {
        let d = divisor.max(1) as f64;
        CsCategory::ALL
            .iter()
            .map(|&c| (c, self.entries(c) as f64 / d, self.contended(c) as f64 / d))
            .collect()
    }
}

/// Page-latch acquisition counters broken down by page kind.
#[derive(Debug, Default)]
pub struct LatchStats {
    acquired: [AtomicU64; N_PAGE_KINDS],
    contended: [AtomicU64; N_PAGE_KINDS],
    /// Latch acquisitions that were *skipped* because the access was latch-free
    /// (PLP owner access).  Useful for sanity-checking the designs.
    bypassed: [AtomicU64; N_PAGE_KINDS],
    wait_nanos: [AtomicU64; N_PAGE_KINDS],
}

impl LatchStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn acquired(&self, kind: PageKind, contended: bool) {
        self.acquired[kind as usize].fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn bypassed(&self, kind: PageKind) {
        self.bypassed[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn waited(&self, kind: PageKind, nanos: u64) {
        self.wait_nanos[kind as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LatchStatsSnapshot {
        let mut acquired = [0u64; N_PAGE_KINDS];
        let mut contended = [0u64; N_PAGE_KINDS];
        let mut bypassed = [0u64; N_PAGE_KINDS];
        let mut wait_nanos = [0u64; N_PAGE_KINDS];
        for i in 0..N_PAGE_KINDS {
            acquired[i] = self.acquired[i].load(Ordering::Relaxed);
            contended[i] = self.contended[i].load(Ordering::Relaxed);
            bypassed[i] = self.bypassed[i].load(Ordering::Relaxed);
            wait_nanos[i] = self.wait_nanos[i].load(Ordering::Relaxed);
        }
        LatchStatsSnapshot {
            acquired,
            contended,
            bypassed,
            wait_nanos,
        }
    }

    pub fn reset(&self) {
        for i in 0..N_PAGE_KINDS {
            self.acquired[i].store(0, Ordering::Relaxed);
            self.contended[i].store(0, Ordering::Relaxed);
            self.bypassed[i].store(0, Ordering::Relaxed);
            self.wait_nanos[i].store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of [`LatchStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStatsSnapshot {
    acquired: [u64; N_PAGE_KINDS],
    contended: [u64; N_PAGE_KINDS],
    bypassed: [u64; N_PAGE_KINDS],
    wait_nanos: [u64; N_PAGE_KINDS],
}

impl LatchStatsSnapshot {
    pub fn acquired(&self, kind: PageKind) -> u64 {
        self.acquired[kind as usize]
    }

    pub fn contended(&self, kind: PageKind) -> u64 {
        self.contended[kind as usize]
    }

    pub fn bypassed(&self, kind: PageKind) -> u64 {
        self.bypassed[kind as usize]
    }

    pub fn wait_nanos(&self, kind: PageKind) -> u64 {
        self.wait_nanos[kind as usize]
    }

    pub fn total_acquired(&self) -> u64 {
        self.acquired.iter().sum()
    }

    pub fn total_bypassed(&self) -> u64 {
        self.bypassed.iter().sum()
    }

    pub fn delta(&self, earlier: &LatchStatsSnapshot) -> LatchStatsSnapshot {
        let mut out = LatchStatsSnapshot::default();
        for i in 0..N_PAGE_KINDS {
            out.acquired[i] = self.acquired[i].saturating_sub(earlier.acquired[i]);
            out.contended[i] = self.contended[i].saturating_sub(earlier.contended[i]);
            out.bypassed[i] = self.bypassed[i].saturating_sub(earlier.bypassed[i]);
            out.wait_nanos[i] = self.wait_nanos[i].saturating_sub(earlier.wait_nanos[i]);
        }
        out
    }
}

/// Dynamic-load-balancing counters (the paper's Section 5 controller).
///
/// Updated by the background load balancer in `plp-core::dlb`; exposed here so
/// the benchmark driver's snapshot/delta machinery covers DLB activity the
/// same way it covers critical sections and latches.
#[derive(Debug, Default)]
pub struct DlbStats {
    /// Controller evaluation rounds (histogram snapshot + imbalance check).
    evaluations: AtomicU64,
    /// Histogram aging (decay) rounds applied.
    decay_rounds: AtomicU64,
    /// Repartitions the controller actually triggered.
    repartitions_triggered: AtomicU64,
    /// Evaluations skipped because the load was already balanced.
    skipped_balanced: AtomicU64,
    /// Evaluations skipped because the cost model vetoed the candidate plan
    /// (predicted movement cost exceeded the predicted gain).
    skipped_cost: AtomicU64,
    /// Evaluations skipped because a repartition happened too recently.
    skipped_cooldown: AtomicU64,
    /// Controller-triggered repartitions that failed (and were rolled back).
    repartitions_failed: AtomicU64,
    /// Failed repartitions whose journal rollback restored the old boundaries.
    rollbacks: AtomicU64,
    /// Most recent observed imbalance (max/mean partition load, f64 bits).
    observed_imbalance_bits: AtomicU64,
    /// Imbalance the last accepted plan predicted after repartitioning
    /// (f64 bits).
    predicted_imbalance_bits: AtomicU64,
}

impl DlbStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn evaluation(&self) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn decay_round(&self) {
        self.decay_rounds.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn triggered(&self) {
        self.repartitions_triggered.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn skipped_balanced(&self) {
        self.skipped_balanced.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn skipped_cost(&self) {
        self.skipped_cost.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn skipped_cooldown(&self) {
        self.skipped_cooldown.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn failed(&self) {
        self.repartitions_failed.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the imbalance observed in an evaluation round.
    #[inline]
    pub fn set_observed_imbalance(&self, imbalance: f64) {
        self.observed_imbalance_bits
            .store(imbalance.to_bits(), Ordering::Relaxed);
    }

    /// Record the imbalance the accepted plan predicts after repartitioning.
    #[inline]
    pub fn set_predicted_imbalance(&self, imbalance: f64) {
        self.predicted_imbalance_bits
            .store(imbalance.to_bits(), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> DlbStatsSnapshot {
        DlbStatsSnapshot {
            evaluations: self.evaluations.load(Ordering::Relaxed),
            decay_rounds: self.decay_rounds.load(Ordering::Relaxed),
            repartitions_triggered: self.repartitions_triggered.load(Ordering::Relaxed),
            skipped_balanced: self.skipped_balanced.load(Ordering::Relaxed),
            skipped_cost: self.skipped_cost.load(Ordering::Relaxed),
            skipped_cooldown: self.skipped_cooldown.load(Ordering::Relaxed),
            repartitions_failed: self.repartitions_failed.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            observed_imbalance: f64::from_bits(
                self.observed_imbalance_bits.load(Ordering::Relaxed),
            ),
            predicted_imbalance: f64::from_bits(
                self.predicted_imbalance_bits.load(Ordering::Relaxed),
            ),
        }
    }

    pub fn reset(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
        self.decay_rounds.store(0, Ordering::Relaxed);
        self.repartitions_triggered.store(0, Ordering::Relaxed);
        self.skipped_balanced.store(0, Ordering::Relaxed);
        self.skipped_cost.store(0, Ordering::Relaxed);
        self.skipped_cooldown.store(0, Ordering::Relaxed);
        self.repartitions_failed.store(0, Ordering::Relaxed);
        self.rollbacks.store(0, Ordering::Relaxed);
        self.observed_imbalance_bits.store(0, Ordering::Relaxed);
        self.predicted_imbalance_bits.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of [`DlbStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DlbStatsSnapshot {
    pub evaluations: u64,
    pub decay_rounds: u64,
    pub repartitions_triggered: u64,
    pub skipped_balanced: u64,
    pub skipped_cost: u64,
    pub skipped_cooldown: u64,
    pub repartitions_failed: u64,
    pub rollbacks: u64,
    pub observed_imbalance: f64,
    pub predicted_imbalance: f64,
}

impl DlbStatsSnapshot {
    /// Counter difference (`self - earlier`); the imbalance gauges keep the
    /// later value (they are point-in-time, not cumulative).
    pub fn delta(&self, earlier: &DlbStatsSnapshot) -> DlbStatsSnapshot {
        DlbStatsSnapshot {
            evaluations: self.evaluations.saturating_sub(earlier.evaluations),
            decay_rounds: self.decay_rounds.saturating_sub(earlier.decay_rounds),
            repartitions_triggered: self
                .repartitions_triggered
                .saturating_sub(earlier.repartitions_triggered),
            skipped_balanced: self
                .skipped_balanced
                .saturating_sub(earlier.skipped_balanced),
            skipped_cost: self.skipped_cost.saturating_sub(earlier.skipped_cost),
            skipped_cooldown: self
                .skipped_cooldown
                .saturating_sub(earlier.skipped_cooldown),
            repartitions_failed: self
                .repartitions_failed
                .saturating_sub(earlier.repartitions_failed),
            rollbacks: self.rollbacks.saturating_sub(earlier.rollbacks),
            observed_imbalance: self.observed_imbalance,
            predicted_imbalance: self.predicted_imbalance,
        }
    }
}

/// Durability counters: group-commit flush batches, fsyncs and recovery
/// progress (the file-backed log device of `plp-wal`).
///
/// Updated by the log manager's flusher thread and by `Engine::recover`;
/// exposed here so the benchmark driver's snapshot/delta machinery covers
/// durability activity the same way it covers critical sections and latches.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Non-empty group-commit batches written by the flusher.
    flush_batches: AtomicU64,
    /// Log records written across all flush batches (mean group-commit batch
    /// size = `flushed_records / flush_batches`).
    flushed_records: AtomicU64,
    /// Log bytes written to the device.
    flushed_bytes: AtomicU64,
    /// `fsync` calls issued on log segment files.
    fsyncs: AtomicU64,
    /// Fuzzy checkpoint records written.
    checkpoints: AtomicU64,
    /// Committed transactions replayed by the last recovery (gauge).
    recovered_txns: AtomicU64,
    /// Redo records replayed by the last recovery (gauge).
    recovered_records: AtomicU64,
    /// Torn-tail bytes discarded by the last recovery (gauge).
    torn_bytes: AtomicU64,
}

impl WalStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one group-commit batch of `records` records / `bytes` bytes.
    #[inline]
    pub fn flushed(&self, records: u64, bytes: u64) {
        self.flush_batches.fetch_add(1, Ordering::Relaxed);
        self.flushed_records.fetch_add(records, Ordering::Relaxed);
        self.flushed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the outcome of a recovery pass (gauges, not cumulative).
    pub fn set_recovery(&self, txns: u64, records: u64, torn_bytes: u64) {
        self.recovered_txns.store(txns, Ordering::Relaxed);
        self.recovered_records.store(records, Ordering::Relaxed);
        self.torn_bytes.store(torn_bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            flush_batches: self.flush_batches.load(Ordering::Relaxed),
            flushed_records: self.flushed_records.load(Ordering::Relaxed),
            flushed_bytes: self.flushed_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovered_txns: self.recovered_txns.load(Ordering::Relaxed),
            recovered_records: self.recovered_records.load(Ordering::Relaxed),
            torn_bytes: self.torn_bytes.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.flush_batches.store(0, Ordering::Relaxed);
        self.flushed_records.store(0, Ordering::Relaxed);
        self.flushed_bytes.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.recovered_txns.store(0, Ordering::Relaxed);
        self.recovered_records.store(0, Ordering::Relaxed);
        self.torn_bytes.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of [`WalStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    pub flush_batches: u64,
    pub flushed_records: u64,
    pub flushed_bytes: u64,
    pub fsyncs: u64,
    pub checkpoints: u64,
    pub recovered_txns: u64,
    pub recovered_records: u64,
    pub torn_bytes: u64,
}

impl WalStatsSnapshot {
    /// Mean records per non-empty group-commit batch.
    pub fn mean_batch_size(&self) -> f64 {
        self.flushed_records as f64 / self.flush_batches.max(1) as f64
    }

    /// Counter difference (`self - earlier`); the recovery fields keep the
    /// later value (they are point-in-time gauges, not cumulative).
    pub fn delta(&self, earlier: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            flush_batches: self.flush_batches.saturating_sub(earlier.flush_batches),
            flushed_records: self.flushed_records.saturating_sub(earlier.flushed_records),
            flushed_bytes: self.flushed_bytes.saturating_sub(earlier.flushed_bytes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            recovered_txns: self.recovered_txns,
            recovered_records: self.recovered_records,
            torn_bytes: self.torn_bytes,
        }
    }
}

/// Network front-end counters for the `plp-server` connection server:
/// connection lifecycle, frame decode outcomes and wire traffic volume.
/// Recorded by the server's accept/reader/writer threads; the per-request
/// server-side latency distribution lives in the `server_request` histogram
/// (see [`crate::histogram::LatencyStats`]).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted by the listener.
    connections_accepted: AtomicU64,
    /// Connections closed (client disconnect, protocol breakdown or server
    /// shutdown).  Active connections = accepted - closed.
    connections_closed: AtomicU64,
    /// Request frames decoded successfully.
    frames_decoded: AtomicU64,
    /// Frames rejected by the decoder (bad magic/version/CRC, truncated or
    /// oversized) — the connection survives and receives an error response.
    decode_errors: AtomicU64,
    /// Response frames written back to clients.
    responses_sent: AtomicU64,
    /// Payload bytes read off client sockets (frame bytes, including
    /// headers; excludes bytes of frames abandoned mid-read).
    bytes_in: AtomicU64,
    /// Bytes written back to clients.
    bytes_out: AtomicU64,
}

impl ServerStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one successfully decoded request frame of `bytes` wire bytes.
    #[inline]
    pub fn frame_decoded(&self, bytes: u64) {
        self.frames_decoded.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one rejected frame (the `bytes` consumed resyncing past it).
    #[inline]
    pub fn decode_error(&self, bytes: u64) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one response frame of `bytes` wire bytes written back.
    #[inline]
    pub fn response_sent(&self, bytes: u64) {
        self.responses_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.connections_accepted.store(0, Ordering::Relaxed);
        self.connections_closed.store(0, Ordering::Relaxed);
        self.frames_decoded.store(0, Ordering::Relaxed);
        self.decode_errors.store(0, Ordering::Relaxed);
        self.responses_sent.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    pub connections_accepted: u64,
    pub connections_closed: u64,
    pub frames_decoded: u64,
    pub decode_errors: u64,
    pub responses_sent: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

impl ServerStatsSnapshot {
    /// Connections currently open (accepted minus closed).
    pub fn active_connections(&self) -> u64 {
        self.connections_accepted
            .saturating_sub(self.connections_closed)
    }

    /// Counter difference (`self - earlier`).
    pub fn delta(&self, earlier: &ServerStatsSnapshot) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections_accepted: self
                .connections_accepted
                .saturating_sub(earlier.connections_accepted),
            connections_closed: self
                .connections_closed
                .saturating_sub(earlier.connections_closed),
            frames_decoded: self.frames_decoded.saturating_sub(earlier.frames_decoded),
            decode_errors: self.decode_errors.saturating_sub(earlier.decode_errors),
            responses_sent: self.responses_sent.saturating_sub(earlier.responses_sent),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
        }
    }
}

/// Message-passing cost counters for the worker request/reply hot path (the
/// paper's Figure 1 "Message passing" component, now measured in time as
/// well as in counts).
///
/// The round-trip and reply-pool counters are recorded by the coordinator in
/// `plp-core`; the queue counters (spins, parks, wakeups) are slow-path
/// counters folded in from the channel shim by
/// `Database::sync_channel_metrics`.
#[derive(Debug, Default)]
pub struct MsgStats {
    /// Action round trips measured (dispatch → reply consumed).
    actions: AtomicU64,
    /// Total coordinator-observed round-trip time.
    roundtrip_nanos: AtomicU64,
    /// Reply rendezvous taken from the session pool (steady state).
    reply_reuses: AtomicU64,
    /// Reply rendezvous freshly allocated (pool warm-up).
    reply_allocs: AtomicU64,
    /// Producer-side queue retry rounds (failed CAS / full-queue spins).
    enqueue_spins: AtomicU64,
    /// Consumer-side queue retry rounds.
    dequeue_spins: AtomicU64,
    /// Threads that exhausted the spin budget and blocked.
    parks: AtomicU64,
    /// Wakeups actually issued (skipped when no one sleeps).
    wakeups: AtomicU64,
    /// Batched dispatches sent (one `WorkerRequest::Batch` each).
    batches: AtomicU64,
    /// Actions carried inside batched dispatches.
    batch_actions: AtomicU64,
    /// Full actions-per-batch distribution. The legacy 5-bucket view in
    /// [`MsgStatsSnapshot::batch_size_buckets`] is recomputed from this
    /// exactly (all five legacy boundaries fall on histogram bucket edges).
    batch_hist: crate::histogram::Histogram,
    /// Dispatches (single or batch) that took a session's SPSC fast lane.
    lane_hits: AtomicU64,
    /// Dispatches that went over the shared MPMC queue instead (lane full,
    /// or the session has no lane to that worker).
    lane_fallbacks: AtomicU64,
}

impl MsgStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one action round trip.
    #[inline]
    pub fn roundtrip(&self, nanos: u64) {
        self.actions.fetch_add(1, Ordering::Relaxed);
        self.roundtrip_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    #[inline]
    pub fn reply_reused(&self) {
        self.reply_reuses.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn reply_allocated(&self) {
        self.reply_allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a single-action dispatch and which path it took.
    #[inline]
    pub fn dispatch_sent(&self, fast_lane: bool) {
        if fast_lane {
            self.lane_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.lane_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one batched dispatch carrying `actions` actions.
    #[inline]
    pub fn batch_sent(&self, actions: u64, fast_lane: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_actions.fetch_add(actions, Ordering::Relaxed);
        self.batch_hist.record(actions);
        self.dispatch_sent(fast_lane);
    }

    /// Fold in a delta of the channel layer's slow-path counters.
    pub fn queue_activity(&self, enqueue_spins: u64, dequeue_spins: u64, parks: u64, wakeups: u64) {
        self.enqueue_spins
            .fetch_add(enqueue_spins, Ordering::Relaxed);
        self.dequeue_spins
            .fetch_add(dequeue_spins, Ordering::Relaxed);
        self.parks.fetch_add(parks, Ordering::Relaxed);
        self.wakeups.fetch_add(wakeups, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MsgStatsSnapshot {
        MsgStatsSnapshot {
            actions: self.actions.load(Ordering::Relaxed),
            roundtrip_nanos: self.roundtrip_nanos.load(Ordering::Relaxed),
            reply_reuses: self.reply_reuses.load(Ordering::Relaxed),
            reply_allocs: self.reply_allocs.load(Ordering::Relaxed),
            enqueue_spins: self.enqueue_spins.load(Ordering::Relaxed),
            dequeue_spins: self.dequeue_spins.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_actions: self.batch_actions.load(Ordering::Relaxed),
            batch_size_buckets: Self::legacy_buckets(&self.batch_hist.snapshot()),
            lane_hits: self.lane_hits.load(Ordering::Relaxed),
            lane_fallbacks: self.lane_fallbacks.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.actions.store(0, Ordering::Relaxed);
        self.roundtrip_nanos.store(0, Ordering::Relaxed);
        self.reply_reuses.store(0, Ordering::Relaxed);
        self.reply_allocs.store(0, Ordering::Relaxed);
        self.enqueue_spins.store(0, Ordering::Relaxed);
        self.dequeue_spins.store(0, Ordering::Relaxed);
        self.parks.store(0, Ordering::Relaxed);
        self.wakeups.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_actions.store(0, Ordering::Relaxed);
        self.batch_hist.reset();
        self.lane_hits.store(0, Ordering::Relaxed);
        self.lane_fallbacks.store(0, Ordering::Relaxed);
    }

    /// Full actions-per-batch distribution (quantile-capable superset of the
    /// legacy 5-bucket view).
    pub fn batch_size_histogram(&self) -> crate::histogram::HistogramSnapshot {
        self.batch_hist.snapshot()
    }

    /// Collapse the histogram into the legacy 2 / 3–4 / 5–8 / 9–16 / 17+
    /// buckets. Exact: below 16 every histogram bucket holds one value, and
    /// value 16 has a dedicated bucket (the first of the 16–31 octave), so
    /// each legacy boundary coincides with a histogram bucket edge.
    fn legacy_buckets(h: &crate::histogram::HistogramSnapshot) -> [u64; 5] {
        use crate::histogram::{bucket_index, bucket_range};
        let mut out = [0u64; 5];
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, _) = bucket_range(i);
            let legacy = match lo {
                0..=2 => 0,
                3..=4 => 1,
                5..=8 => 2,
                9..=16 => 3,
                _ => 4,
            };
            out[legacy] += n;
        }
        debug_assert_eq!(bucket_range(bucket_index(16)), (16, 16));
        out
    }
}

/// An immutable copy of [`MsgStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgStatsSnapshot {
    pub actions: u64,
    pub roundtrip_nanos: u64,
    pub reply_reuses: u64,
    pub reply_allocs: u64,
    pub enqueue_spins: u64,
    pub dequeue_spins: u64,
    pub parks: u64,
    pub wakeups: u64,
    pub batches: u64,
    pub batch_actions: u64,
    pub batch_size_buckets: [u64; 5],
    pub lane_hits: u64,
    pub lane_fallbacks: u64,
}

impl MsgStatsSnapshot {
    /// Mean coordinator-observed round-trip time per action.
    pub fn mean_roundtrip_nanos(&self) -> f64 {
        self.roundtrip_nanos as f64 / self.actions.max(1) as f64
    }

    /// Fraction of dispatches served from the reply pool (steady state → 1).
    pub fn reply_pool_hit_rate(&self) -> f64 {
        let total = self.reply_reuses + self.reply_allocs;
        if total == 0 {
            return 0.0;
        }
        self.reply_reuses as f64 / total as f64
    }

    /// Mean actions carried per batched dispatch (0 when no batches).
    pub fn mean_actions_per_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_actions as f64 / self.batches as f64
    }

    /// Fraction of dispatches that took an SPSC fast lane.
    pub fn lane_hit_rate(&self) -> f64 {
        let total = self.lane_hits + self.lane_fallbacks;
        if total == 0 {
            return 0.0;
        }
        self.lane_hits as f64 / total as f64
    }

    /// Counter difference (`self - earlier`); all fields are cumulative.
    pub fn delta(&self, earlier: &MsgStatsSnapshot) -> MsgStatsSnapshot {
        MsgStatsSnapshot {
            actions: self.actions.saturating_sub(earlier.actions),
            roundtrip_nanos: self.roundtrip_nanos.saturating_sub(earlier.roundtrip_nanos),
            reply_reuses: self.reply_reuses.saturating_sub(earlier.reply_reuses),
            reply_allocs: self.reply_allocs.saturating_sub(earlier.reply_allocs),
            enqueue_spins: self.enqueue_spins.saturating_sub(earlier.enqueue_spins),
            dequeue_spins: self.dequeue_spins.saturating_sub(earlier.dequeue_spins),
            parks: self.parks.saturating_sub(earlier.parks),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            batches: self.batches.saturating_sub(earlier.batches),
            batch_actions: self.batch_actions.saturating_sub(earlier.batch_actions),
            batch_size_buckets: [
                self.batch_size_buckets[0].saturating_sub(earlier.batch_size_buckets[0]),
                self.batch_size_buckets[1].saturating_sub(earlier.batch_size_buckets[1]),
                self.batch_size_buckets[2].saturating_sub(earlier.batch_size_buckets[2]),
                self.batch_size_buckets[3].saturating_sub(earlier.batch_size_buckets[3]),
                self.batch_size_buckets[4].saturating_sub(earlier.batch_size_buckets[4]),
            ],
            lane_hits: self.lane_hits.saturating_sub(earlier.lane_hits),
            lane_fallbacks: self.lane_fallbacks.saturating_sub(earlier.lane_fallbacks),
        }
    }
}

/// Shared registry of all instrumentation counters for one engine instance.
///
/// Cloning the `Arc<StatsRegistry>` is how every component gains access; the
/// registry itself is cheap (a few cache lines of atomics).
#[derive(Debug, Default)]
pub struct StatsRegistry {
    cs: CsStats,
    latches: LatchStats,
    dlb: DlbStats,
    wal: WalStats,
    msg: MsgStats,
    server: ServerStats,
    committed_txns: AtomicU64,
    aborted_txns: AtomicU64,
    /// Structure-modification operations performed (page splits, slices, melds).
    smo_count: AtomicU64,
    /// Nanoseconds spent waiting to enter an SMO (the ARIES/KVL one-SMO-at-a-time
    /// serialization the paper calls out; shown as "Latch-smo" in Figure 10).
    smo_wait_nanos: AtomicU64,
    /// Latency histograms (action round-trip, dispatch, WAL, locks, DLB).
    /// Snapshotted separately from [`StatsSnapshot`] (which stays `Copy`):
    /// see [`StatsRegistry::latency`] and
    /// [`LatencyStats::snapshot`](crate::LatencyStats::snapshot).
    latency: crate::histogram::LatencyStats,
    /// Per-thread trace rings (see [`crate::trace`]).
    trace: crate::trace::TraceRegistry,
    /// Top-K slowest transactions with phase breakdowns (see [`crate::slowlog`]).
    slow: crate::slowlog::SlowLog,
    /// DLB controller decision audit ring (see [`crate::slowlog`]).
    decisions: crate::slowlog::DecisionLog,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    pub fn cs(&self) -> &CsStats {
        &self.cs
    }

    pub fn latches(&self) -> &LatchStats {
        &self.latches
    }

    pub fn dlb(&self) -> &DlbStats {
        &self.dlb
    }

    pub fn wal(&self) -> &WalStats {
        &self.wal
    }

    pub fn msg(&self) -> &MsgStats {
        &self.msg
    }

    /// The network front end's connection/frame counters.
    pub fn server(&self) -> &ServerStats {
        &self.server
    }

    /// The engine's latency histograms.
    pub fn latency(&self) -> &crate::histogram::LatencyStats {
        &self.latency
    }

    /// The engine's per-thread trace rings.
    pub fn trace(&self) -> &crate::trace::TraceRegistry {
        &self.trace
    }

    /// The slow-transaction reservoir.
    pub fn slow(&self) -> &crate::slowlog::SlowLog {
        &self.slow
    }

    /// The DLB controller's decision audit ring.
    pub fn dlb_decisions(&self) -> &crate::slowlog::DecisionLog {
        &self.decisions
    }

    #[inline]
    pub fn txn_committed(&self) {
        self.committed_txns.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn txn_aborted(&self) {
        self.aborted_txns.fetch_add(1, Ordering::Relaxed);
    }

    pub fn committed(&self) -> u64 {
        self.committed_txns.load(Ordering::Relaxed)
    }

    pub fn aborted(&self) -> u64 {
        self.aborted_txns.load(Ordering::Relaxed)
    }

    /// Record one structure-modification operation and the time spent waiting
    /// to be allowed to start it.
    #[inline]
    pub fn smo_performed(&self, wait_nanos: u64) {
        self.smo_count.fetch_add(1, Ordering::Relaxed);
        if wait_nanos > 0 {
            self.smo_wait_nanos.fetch_add(wait_nanos, Ordering::Relaxed);
        }
    }

    pub fn smo_count(&self) -> u64 {
        self.smo_count.load(Ordering::Relaxed)
    }

    pub fn smo_wait_nanos(&self) -> u64 {
        self.smo_wait_nanos.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cs: self.cs.snapshot(),
            latches: self.latches.snapshot(),
            dlb: self.dlb.snapshot(),
            wal: self.wal.snapshot(),
            msg: self.msg.snapshot(),
            server: self.server.snapshot(),
            committed: self.committed(),
            aborted: self.aborted(),
            smo_count: self.smo_count(),
            smo_wait_nanos: self.smo_wait_nanos(),
        }
    }

    pub fn reset(&self) {
        self.cs.reset();
        self.latches.reset();
        self.dlb.reset();
        self.wal.reset();
        self.msg.reset();
        self.server.reset();
        self.committed_txns.store(0, Ordering::Relaxed);
        self.aborted_txns.store(0, Ordering::Relaxed);
        self.smo_count.store(0, Ordering::Relaxed);
        self.smo_wait_nanos.store(0, Ordering::Relaxed);
        self.latency.reset();
        self.trace.reset();
        self.slow.reset();
        self.decisions.reset();
    }
}

/// A consistent-enough snapshot of every counter in a [`StatsRegistry`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    pub cs: CsStatsSnapshot,
    pub latches: LatchStatsSnapshot,
    pub dlb: DlbStatsSnapshot,
    pub wal: WalStatsSnapshot,
    pub msg: MsgStatsSnapshot,
    pub server: ServerStatsSnapshot,
    pub committed: u64,
    pub aborted: u64,
    pub smo_count: u64,
    pub smo_wait_nanos: u64,
}

impl StatsSnapshot {
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            cs: self.cs.delta(&earlier.cs),
            latches: self.latches.delta(&earlier.latches),
            dlb: self.dlb.delta(&earlier.dlb),
            wal: self.wal.delta(&earlier.wal),
            msg: self.msg.delta(&earlier.msg),
            server: self.server.delta(&earlier.server),
            committed: self.committed.saturating_sub(earlier.committed),
            aborted: self.aborted.saturating_sub(earlier.aborted),
            smo_count: self.smo_count.saturating_sub(earlier.smo_count),
            smo_wait_nanos: self.smo_wait_nanos.saturating_sub(earlier.smo_wait_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_classes_match_paper() {
        assert_eq!(
            CsCategory::LockMgr.contention_class(),
            ContentionClass::Unscalable
        );
        assert_eq!(
            CsCategory::PageLatch.contention_class(),
            ContentionClass::Unscalable
        );
        assert_eq!(
            CsCategory::LogMgr.contention_class(),
            ContentionClass::Composable
        );
        assert_eq!(
            CsCategory::XctMgr.contention_class(),
            ContentionClass::Fixed
        );
        assert_eq!(
            CsCategory::MessagePassing.contention_class(),
            ContentionClass::Fixed
        );
    }

    #[test]
    fn cs_stats_count_and_delta() {
        let s = CsStats::new();
        s.enter(CsCategory::LockMgr, false);
        s.enter(CsCategory::LockMgr, true);
        s.enter_n(CsCategory::LogMgr, 5, false);
        let a = s.snapshot();
        assert_eq!(a.entries(CsCategory::LockMgr), 2);
        assert_eq!(a.contended(CsCategory::LockMgr), 1);
        assert_eq!(a.entries(CsCategory::LogMgr), 5);
        s.enter(CsCategory::LockMgr, false);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.entries(CsCategory::LockMgr), 1);
        assert_eq!(d.entries(CsCategory::LogMgr), 0);
    }

    #[test]
    fn contentious_counts_only_unscalable() {
        let s = CsStats::new();
        s.enter(CsCategory::LockMgr, true);
        s.enter(CsCategory::XctMgr, true); // fixed: excluded
        s.enter(CsCategory::LogMgr, true); // composable: excluded
        s.enter(CsCategory::PageLatch, true);
        let snap = s.snapshot();
        assert_eq!(snap.contentious(), 2);
        assert_eq!(snap.total_contended(), 4);
    }

    #[test]
    fn latch_stats_by_kind() {
        let l = LatchStats::new();
        l.acquired(PageKind::Index, false);
        l.acquired(PageKind::Index, true);
        l.acquired(PageKind::Heap, false);
        l.bypassed(PageKind::Index);
        l.waited(PageKind::Heap, 1000);
        let s = l.snapshot();
        assert_eq!(s.acquired(PageKind::Index), 2);
        assert_eq!(s.contended(PageKind::Index), 1);
        assert_eq!(s.acquired(PageKind::Heap), 1);
        assert_eq!(s.bypassed(PageKind::Index), 1);
        assert_eq!(s.wait_nanos(PageKind::Heap), 1000);
        assert_eq!(s.total_acquired(), 3);
    }

    #[test]
    fn per_txn_normalisation() {
        let s = CsStats::new();
        s.enter_n(CsCategory::PageLatch, 100, false);
        let snap = s.snapshot();
        let rows = snap.per_txn(10);
        let latch_row = rows
            .iter()
            .find(|(c, _, _)| *c == CsCategory::PageLatch)
            .unwrap();
        assert!((latch_row.1 - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn registry_txn_counters() {
        let r = StatsRegistry::new();
        r.txn_committed();
        r.txn_committed();
        r.txn_aborted();
        assert_eq!(r.committed(), 2);
        assert_eq!(r.aborted(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.committed, 2);
        r.reset();
        assert_eq!(r.committed(), 0);
    }

    #[test]
    fn dlb_stats_counters_and_gauges() {
        let d = DlbStats::new();
        d.evaluation();
        d.evaluation();
        d.decay_round();
        d.triggered();
        d.skipped_balanced();
        d.skipped_cost();
        d.skipped_cooldown();
        d.failed();
        d.rollback();
        d.set_observed_imbalance(2.5);
        d.set_predicted_imbalance(1.1);
        let a = d.snapshot();
        assert_eq!(a.evaluations, 2);
        assert_eq!(a.repartitions_triggered, 1);
        assert_eq!(a.rollbacks, 1);
        assert!((a.observed_imbalance - 2.5).abs() < f64::EPSILON);
        assert!((a.predicted_imbalance - 1.1).abs() < f64::EPSILON);
        d.evaluation();
        let b = d.snapshot();
        let delta = b.delta(&a);
        assert_eq!(delta.evaluations, 1);
        assert_eq!(delta.repartitions_triggered, 0);
        // Gauges keep the later point-in-time value.
        assert!((delta.observed_imbalance - 2.5).abs() < f64::EPSILON);
        d.reset();
        assert_eq!(d.snapshot().evaluations, 0);
        assert_eq!(d.snapshot().observed_imbalance, 0.0);
    }

    #[test]
    fn wal_stats_counters_gauges_and_batch_size() {
        let w = WalStats::new();
        w.flushed(10, 1000);
        w.flushed(20, 2000);
        w.fsync();
        w.checkpoint();
        w.set_recovery(5, 50, 7);
        let a = w.snapshot();
        assert_eq!(a.flush_batches, 2);
        assert_eq!(a.flushed_records, 30);
        assert_eq!(a.flushed_bytes, 3000);
        assert_eq!(a.fsyncs, 1);
        assert_eq!(a.checkpoints, 1);
        assert!((a.mean_batch_size() - 15.0).abs() < f64::EPSILON);
        w.flushed(2, 64);
        let b = w.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.flush_batches, 1);
        assert_eq!(d.flushed_records, 2);
        // Recovery fields are point-in-time gauges: delta keeps the later value.
        assert_eq!(d.recovered_txns, 5);
        assert_eq!(d.torn_bytes, 7);
        w.reset();
        assert_eq!(w.snapshot().flush_batches, 0);
        assert_eq!(w.snapshot().recovered_records, 0);
        // Empty stats report a 0 batch size, not NaN.
        assert_eq!(WalStats::new().snapshot().mean_batch_size(), 0.0);
    }

    #[test]
    fn msg_stats_roundtrips_pool_and_queue_activity() {
        let m = MsgStats::new();
        m.roundtrip(1_000);
        m.roundtrip(3_000);
        m.reply_reused();
        m.reply_reused();
        m.reply_reused();
        m.reply_allocated();
        m.queue_activity(5, 7, 2, 1);
        let a = m.snapshot();
        assert_eq!(a.actions, 2);
        assert!((a.mean_roundtrip_nanos() - 2_000.0).abs() < f64::EPSILON);
        assert!((a.reply_pool_hit_rate() - 0.75).abs() < f64::EPSILON);
        assert_eq!(a.enqueue_spins, 5);
        assert_eq!(a.dequeue_spins, 7);
        assert_eq!(a.parks, 2);
        assert_eq!(a.wakeups, 1);
        m.roundtrip(500);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.actions, 1);
        assert_eq!(d.roundtrip_nanos, 500);
        assert_eq!(d.enqueue_spins, 0);
        m.reset();
        assert_eq!(m.snapshot().actions, 0);
        // Empty stats report 0, not NaN.
        assert_eq!(MsgStats::new().snapshot().mean_roundtrip_nanos(), 0.0);
        assert_eq!(MsgStats::new().snapshot().reply_pool_hit_rate(), 0.0);
    }

    #[test]
    fn registry_snapshot_includes_msg() {
        let r = StatsRegistry::new();
        r.msg().roundtrip(10);
        assert_eq!(r.snapshot().msg.actions, 1);
        r.reset();
        assert_eq!(r.snapshot().msg.actions, 0);
    }

    #[test]
    fn registry_snapshot_includes_wal() {
        let r = StatsRegistry::new();
        r.wal().flushed(3, 30);
        assert_eq!(r.snapshot().wal.flush_batches, 1);
        r.reset();
        assert_eq!(r.snapshot().wal.flush_batches, 0);
    }

    #[test]
    fn registry_snapshot_includes_dlb() {
        let r = StatsRegistry::new();
        r.dlb().triggered();
        assert_eq!(r.snapshot().dlb.repartitions_triggered, 1);
        r.reset();
        assert_eq!(r.snapshot().dlb.repartitions_triggered, 0);
    }

    #[test]
    fn page_kind_maps_to_cs_category() {
        assert_eq!(PageKind::Index.cs_category(), CsCategory::PageLatch);
        assert_eq!(PageKind::Heap.cs_category(), CsCategory::PageLatch);
        assert_eq!(PageKind::CatalogSpace.cs_category(), CsCategory::Metadata);
    }
}
