//! Critical-section and page-latch counters.
//!
//! The categories mirror the breakdown used in Figure 1 of the paper ("CSs per
//! transaction" by originating storage-manager service) and the page-kind
//! breakdown used in Figures 2 and 3.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The storage-manager component that owns a critical section.
///
/// These are exactly the categories of Figure 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum CsCategory {
    /// Centralized lock-manager critical sections (lock-head buckets, queues).
    LockMgr = 0,
    /// Page-latch acquisitions (index, heap and catalog pages).
    PageLatch = 1,
    /// Buffer-pool critical sections (frame-table buckets, cleaner handshakes).
    Bpool = 2,
    /// Catalog, free-space and other metadata latching.
    Metadata = 3,
    /// Log-manager critical sections (log-buffer inserts, flush handshakes).
    LogMgr = 4,
    /// Transaction-manager critical sections (txn object state transitions).
    XctMgr = 5,
    /// Message passing between the partition manager and worker threads.
    MessagePassing = 6,
    /// Everything else.
    Uncategorized = 7,
}

impl CsCategory {
    pub const ALL: [CsCategory; 8] = [
        CsCategory::LockMgr,
        CsCategory::PageLatch,
        CsCategory::Bpool,
        CsCategory::Metadata,
        CsCategory::LogMgr,
        CsCategory::XctMgr,
        CsCategory::MessagePassing,
        CsCategory::Uncategorized,
    ];

    /// The contention class the paper assigns to this kind of communication
    /// (Section 2.1).
    pub fn contention_class(self) -> ContentionClass {
        match self {
            CsCategory::LockMgr => ContentionClass::Unscalable,
            CsCategory::PageLatch => ContentionClass::Unscalable,
            CsCategory::Bpool => ContentionClass::Fixed,
            CsCategory::Metadata => ContentionClass::Unscalable,
            CsCategory::LogMgr => ContentionClass::Composable,
            CsCategory::XctMgr => ContentionClass::Fixed,
            CsCategory::MessagePassing => ContentionClass::Fixed,
            CsCategory::Uncategorized => ContentionClass::Unscalable,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CsCategory::LockMgr => "Lock mgr",
            CsCategory::PageLatch => "Page Latches",
            CsCategory::Bpool => "Bpool",
            CsCategory::Metadata => "Metadata",
            CsCategory::LogMgr => "Log mgr",
            CsCategory::XctMgr => "Xct mgr",
            CsCategory::MessagePassing => "Message passing",
            CsCategory::Uncategorized => "Uncategorized",
        }
    }
}

impl fmt::Display for CsCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The contention behaviour of a critical section (Section 2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentionClass {
    /// Contention independent of hardware parallelism (e.g. producer/consumer
    /// pairs, transaction-object state transitions).
    Fixed,
    /// Threads can aggregate their operations while queueing (e.g. Aether-style
    /// consolidated log inserts).
    Composable,
    /// Contention grows with the number of threads; these become bottlenecks.
    Unscalable,
}

impl ContentionClass {
    pub fn name(self) -> &'static str {
        match self {
            ContentionClass::Fixed => "fixed",
            ContentionClass::Composable => "composable",
            ContentionClass::Unscalable => "unscalable",
        }
    }
}

/// The kind of database page a latch protects (Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum PageKind {
    /// B+Tree / MRBTree interior and leaf pages.
    Index = 0,
    /// Heap-file pages holding non-clustered records.
    Heap = 1,
    /// Catalog, routing (partition-table) and free-space-management pages.
    CatalogSpace = 2,
}

impl PageKind {
    pub const ALL: [PageKind; 3] = [PageKind::Index, PageKind::Heap, PageKind::CatalogSpace];

    pub fn name(self) -> &'static str {
        match self {
            PageKind::Index => "INDEX",
            PageKind::Heap => "HEAP",
            PageKind::CatalogSpace => "CATALOG/SPACE",
        }
    }

    /// The critical-section category a latch on this page kind reports under.
    pub fn cs_category(self) -> CsCategory {
        match self {
            PageKind::Index | PageKind::Heap => CsCategory::PageLatch,
            PageKind::CatalogSpace => CsCategory::Metadata,
        }
    }
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const N_CATEGORIES: usize = 8;
const N_PAGE_KINDS: usize = 3;

/// Critical-section entry counters, one slot per [`CsCategory`].
#[derive(Debug, Default)]
pub struct CsStats {
    entries: [AtomicU64; N_CATEGORIES],
    contended: [AtomicU64; N_CATEGORIES],
}

impl CsStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record entry into a critical section.  `contended` means the thread had
    /// to wait (the try-acquire failed and it fell back to blocking).
    #[inline]
    pub fn enter(&self, cat: CsCategory, contended: bool) {
        self.entries[cat as usize].fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended[cat as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record `n` entries at once (used by composable critical sections where
    /// one thread performs work on behalf of many).
    #[inline]
    pub fn enter_n(&self, cat: CsCategory, n: u64, contended: bool) {
        self.entries[cat as usize].fetch_add(n, Ordering::Relaxed);
        if contended {
            self.contended[cat as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> CsStatsSnapshot {
        let mut entries = [0u64; N_CATEGORIES];
        let mut contended = [0u64; N_CATEGORIES];
        for i in 0..N_CATEGORIES {
            entries[i] = self.entries[i].load(Ordering::Relaxed);
            contended[i] = self.contended[i].load(Ordering::Relaxed);
        }
        CsStatsSnapshot { entries, contended }
    }

    pub fn reset(&self) {
        for i in 0..N_CATEGORIES {
            self.entries[i].store(0, Ordering::Relaxed);
            self.contended[i].store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of [`CsStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsStatsSnapshot {
    entries: [u64; N_CATEGORIES],
    contended: [u64; N_CATEGORIES],
}

impl CsStatsSnapshot {
    pub fn entries(&self, cat: CsCategory) -> u64 {
        self.entries[cat as usize]
    }

    pub fn contended(&self, cat: CsCategory) -> u64 {
        self.contended[cat as usize]
    }

    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    pub fn total_contended(&self) -> u64 {
        self.contended.iter().sum()
    }

    /// Total entries into critical sections whose contention class is
    /// "unscalable" — the quantity PLP sets out to minimise.
    pub fn unscalable_entries(&self) -> u64 {
        CsCategory::ALL
            .iter()
            .filter(|c| c.contention_class() == ContentionClass::Unscalable)
            .map(|&c| self.entries(c))
            .sum()
    }

    /// Contended entries into unscalable critical sections — the paper's
    /// headline "contentious critical sections" metric.
    pub fn contentious(&self) -> u64 {
        CsCategory::ALL
            .iter()
            .filter(|c| c.contention_class() == ContentionClass::Unscalable)
            .map(|&c| self.contended(c))
            .sum()
    }

    /// Difference between two snapshots (`self - earlier`), saturating at zero.
    pub fn delta(&self, earlier: &CsStatsSnapshot) -> CsStatsSnapshot {
        let mut out = CsStatsSnapshot::default();
        for i in 0..N_CATEGORIES {
            out.entries[i] = self.entries[i].saturating_sub(earlier.entries[i]);
            out.contended[i] = self.contended[i].saturating_sub(earlier.contended[i]);
        }
        out
    }

    /// Scale every counter by `1 / divisor` producing per-transaction floats.
    pub fn per_txn(&self, divisor: u64) -> Vec<(CsCategory, f64, f64)> {
        let d = divisor.max(1) as f64;
        CsCategory::ALL
            .iter()
            .map(|&c| (c, self.entries(c) as f64 / d, self.contended(c) as f64 / d))
            .collect()
    }
}

/// Page-latch acquisition counters broken down by page kind.
#[derive(Debug, Default)]
pub struct LatchStats {
    acquired: [AtomicU64; N_PAGE_KINDS],
    contended: [AtomicU64; N_PAGE_KINDS],
    /// Latch acquisitions that were *skipped* because the access was latch-free
    /// (PLP owner access).  Useful for sanity-checking the designs.
    bypassed: [AtomicU64; N_PAGE_KINDS],
    wait_nanos: [AtomicU64; N_PAGE_KINDS],
}

impl LatchStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn acquired(&self, kind: PageKind, contended: bool) {
        self.acquired[kind as usize].fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn bypassed(&self, kind: PageKind) {
        self.bypassed[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn waited(&self, kind: PageKind, nanos: u64) {
        self.wait_nanos[kind as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LatchStatsSnapshot {
        let mut acquired = [0u64; N_PAGE_KINDS];
        let mut contended = [0u64; N_PAGE_KINDS];
        let mut bypassed = [0u64; N_PAGE_KINDS];
        let mut wait_nanos = [0u64; N_PAGE_KINDS];
        for i in 0..N_PAGE_KINDS {
            acquired[i] = self.acquired[i].load(Ordering::Relaxed);
            contended[i] = self.contended[i].load(Ordering::Relaxed);
            bypassed[i] = self.bypassed[i].load(Ordering::Relaxed);
            wait_nanos[i] = self.wait_nanos[i].load(Ordering::Relaxed);
        }
        LatchStatsSnapshot {
            acquired,
            contended,
            bypassed,
            wait_nanos,
        }
    }

    pub fn reset(&self) {
        for i in 0..N_PAGE_KINDS {
            self.acquired[i].store(0, Ordering::Relaxed);
            self.contended[i].store(0, Ordering::Relaxed);
            self.bypassed[i].store(0, Ordering::Relaxed);
            self.wait_nanos[i].store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of [`LatchStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStatsSnapshot {
    acquired: [u64; N_PAGE_KINDS],
    contended: [u64; N_PAGE_KINDS],
    bypassed: [u64; N_PAGE_KINDS],
    wait_nanos: [u64; N_PAGE_KINDS],
}

impl LatchStatsSnapshot {
    pub fn acquired(&self, kind: PageKind) -> u64 {
        self.acquired[kind as usize]
    }

    pub fn contended(&self, kind: PageKind) -> u64 {
        self.contended[kind as usize]
    }

    pub fn bypassed(&self, kind: PageKind) -> u64 {
        self.bypassed[kind as usize]
    }

    pub fn wait_nanos(&self, kind: PageKind) -> u64 {
        self.wait_nanos[kind as usize]
    }

    pub fn total_acquired(&self) -> u64 {
        self.acquired.iter().sum()
    }

    pub fn total_bypassed(&self) -> u64 {
        self.bypassed.iter().sum()
    }

    pub fn delta(&self, earlier: &LatchStatsSnapshot) -> LatchStatsSnapshot {
        let mut out = LatchStatsSnapshot::default();
        for i in 0..N_PAGE_KINDS {
            out.acquired[i] = self.acquired[i].saturating_sub(earlier.acquired[i]);
            out.contended[i] = self.contended[i].saturating_sub(earlier.contended[i]);
            out.bypassed[i] = self.bypassed[i].saturating_sub(earlier.bypassed[i]);
            out.wait_nanos[i] = self.wait_nanos[i].saturating_sub(earlier.wait_nanos[i]);
        }
        out
    }
}

/// Shared registry of all instrumentation counters for one engine instance.
///
/// Cloning the `Arc<StatsRegistry>` is how every component gains access; the
/// registry itself is cheap (a few cache lines of atomics).
#[derive(Debug, Default)]
pub struct StatsRegistry {
    cs: CsStats,
    latches: LatchStats,
    committed_txns: AtomicU64,
    aborted_txns: AtomicU64,
    /// Structure-modification operations performed (page splits, slices, melds).
    smo_count: AtomicU64,
    /// Nanoseconds spent waiting to enter an SMO (the ARIES/KVL one-SMO-at-a-time
    /// serialization the paper calls out; shown as "Latch-smo" in Figure 10).
    smo_wait_nanos: AtomicU64,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    pub fn cs(&self) -> &CsStats {
        &self.cs
    }

    pub fn latches(&self) -> &LatchStats {
        &self.latches
    }

    #[inline]
    pub fn txn_committed(&self) {
        self.committed_txns.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn txn_aborted(&self) {
        self.aborted_txns.fetch_add(1, Ordering::Relaxed);
    }

    pub fn committed(&self) -> u64 {
        self.committed_txns.load(Ordering::Relaxed)
    }

    pub fn aborted(&self) -> u64 {
        self.aborted_txns.load(Ordering::Relaxed)
    }

    /// Record one structure-modification operation and the time spent waiting
    /// to be allowed to start it.
    #[inline]
    pub fn smo_performed(&self, wait_nanos: u64) {
        self.smo_count.fetch_add(1, Ordering::Relaxed);
        if wait_nanos > 0 {
            self.smo_wait_nanos.fetch_add(wait_nanos, Ordering::Relaxed);
        }
    }

    pub fn smo_count(&self) -> u64 {
        self.smo_count.load(Ordering::Relaxed)
    }

    pub fn smo_wait_nanos(&self) -> u64 {
        self.smo_wait_nanos.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cs: self.cs.snapshot(),
            latches: self.latches.snapshot(),
            committed: self.committed(),
            aborted: self.aborted(),
            smo_count: self.smo_count(),
            smo_wait_nanos: self.smo_wait_nanos(),
        }
    }

    pub fn reset(&self) {
        self.cs.reset();
        self.latches.reset();
        self.committed_txns.store(0, Ordering::Relaxed);
        self.aborted_txns.store(0, Ordering::Relaxed);
        self.smo_count.store(0, Ordering::Relaxed);
        self.smo_wait_nanos.store(0, Ordering::Relaxed);
    }
}

/// A consistent-enough snapshot of every counter in a [`StatsRegistry`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    pub cs: CsStatsSnapshot,
    pub latches: LatchStatsSnapshot,
    pub committed: u64,
    pub aborted: u64,
    pub smo_count: u64,
    pub smo_wait_nanos: u64,
}

impl StatsSnapshot {
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            cs: self.cs.delta(&earlier.cs),
            latches: self.latches.delta(&earlier.latches),
            committed: self.committed.saturating_sub(earlier.committed),
            aborted: self.aborted.saturating_sub(earlier.aborted),
            smo_count: self.smo_count.saturating_sub(earlier.smo_count),
            smo_wait_nanos: self.smo_wait_nanos.saturating_sub(earlier.smo_wait_nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_classes_match_paper() {
        assert_eq!(
            CsCategory::LockMgr.contention_class(),
            ContentionClass::Unscalable
        );
        assert_eq!(
            CsCategory::PageLatch.contention_class(),
            ContentionClass::Unscalable
        );
        assert_eq!(
            CsCategory::LogMgr.contention_class(),
            ContentionClass::Composable
        );
        assert_eq!(CsCategory::XctMgr.contention_class(), ContentionClass::Fixed);
        assert_eq!(
            CsCategory::MessagePassing.contention_class(),
            ContentionClass::Fixed
        );
    }

    #[test]
    fn cs_stats_count_and_delta() {
        let s = CsStats::new();
        s.enter(CsCategory::LockMgr, false);
        s.enter(CsCategory::LockMgr, true);
        s.enter_n(CsCategory::LogMgr, 5, false);
        let a = s.snapshot();
        assert_eq!(a.entries(CsCategory::LockMgr), 2);
        assert_eq!(a.contended(CsCategory::LockMgr), 1);
        assert_eq!(a.entries(CsCategory::LogMgr), 5);
        s.enter(CsCategory::LockMgr, false);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.entries(CsCategory::LockMgr), 1);
        assert_eq!(d.entries(CsCategory::LogMgr), 0);
    }

    #[test]
    fn contentious_counts_only_unscalable() {
        let s = CsStats::new();
        s.enter(CsCategory::LockMgr, true);
        s.enter(CsCategory::XctMgr, true); // fixed: excluded
        s.enter(CsCategory::LogMgr, true); // composable: excluded
        s.enter(CsCategory::PageLatch, true);
        let snap = s.snapshot();
        assert_eq!(snap.contentious(), 2);
        assert_eq!(snap.total_contended(), 4);
    }

    #[test]
    fn latch_stats_by_kind() {
        let l = LatchStats::new();
        l.acquired(PageKind::Index, false);
        l.acquired(PageKind::Index, true);
        l.acquired(PageKind::Heap, false);
        l.bypassed(PageKind::Index);
        l.waited(PageKind::Heap, 1000);
        let s = l.snapshot();
        assert_eq!(s.acquired(PageKind::Index), 2);
        assert_eq!(s.contended(PageKind::Index), 1);
        assert_eq!(s.acquired(PageKind::Heap), 1);
        assert_eq!(s.bypassed(PageKind::Index), 1);
        assert_eq!(s.wait_nanos(PageKind::Heap), 1000);
        assert_eq!(s.total_acquired(), 3);
    }

    #[test]
    fn per_txn_normalisation() {
        let s = CsStats::new();
        s.enter_n(CsCategory::PageLatch, 100, false);
        let snap = s.snapshot();
        let rows = snap.per_txn(10);
        let latch_row = rows
            .iter()
            .find(|(c, _, _)| *c == CsCategory::PageLatch)
            .unwrap();
        assert!((latch_row.1 - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn registry_txn_counters() {
        let r = StatsRegistry::new();
        r.txn_committed();
        r.txn_committed();
        r.txn_aborted();
        assert_eq!(r.committed(), 2);
        assert_eq!(r.aborted(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.committed, 2);
        r.reset();
        assert_eq!(r.committed(), 0);
    }

    #[test]
    fn page_kind_maps_to_cs_category() {
        assert_eq!(PageKind::Index.cs_category(), CsCategory::PageLatch);
        assert_eq!(PageKind::Heap.cs_category(), CsCategory::PageLatch);
        assert_eq!(PageKind::CatalogSpace.cs_category(), CsCategory::Metadata);
    }
}
