//! Log-linear latency histograms with lock-free recording.
//!
//! A [`Histogram`] covers the full `u64` range with fixed bucket boundaries
//! (no configuration, no resizing): values below 16 get one bucket each, and
//! every power-of-two octave above that is split into 16 linear sub-buckets.
//! The reported bounds of a value's bucket therefore bracket the true value
//! within a relative error of 1/16 (6.25%), HDR-histogram style.
//!
//! Recording is a single relaxed `fetch_add` on the bucket plus the
//! count/sum/max rollups — safe to leave enabled on the hot path, and
//! compiled to a no-op under the `obs-stub` feature so the `fig_obs` bench
//! can measure the difference.
//!
//! Because the bucket boundaries are global constants, [`Histogram::merge`]
//! and [`HistogramSnapshot::delta`] are exact: merging two histograms yields
//! bucket-identical results to recording every sample into one, and interval
//! quantiles fall out of subtracting cumulative bucket counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave splits into `1 << SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count: 16 exact unit buckets (values 0–15) plus 60 octaves
/// (msb 4 through 63) of 16 sub-buckets each.
pub const NUM_BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// Map a value to its bucket index. Exact for values below 16; above that the
/// bucket spans `2^(msb-4)` consecutive values.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        (((shift + 1) << SUB_BITS) as u64 + ((value >> shift) & (SUB_COUNT - 1))) as usize
    }
}

/// Inclusive `(low, high)` value range covered by a bucket index.
pub fn bucket_range(index: usize) -> (u64, u64) {
    debug_assert!(index < NUM_BUCKETS);
    let index = index as u64;
    if index < SUB_COUNT {
        (index, index)
    } else {
        let group = index >> SUB_BITS;
        let sub = index & (SUB_COUNT - 1);
        let msb = (group as u32 - 1) + SUB_BITS;
        let width = 1u64 << (msb - SUB_BITS);
        let low = (1u64 << msb) + sub * width;
        // `low + width` overflows for the very last bucket (high == u64::MAX).
        (low, low + (width - 1))
    }
}

/// A fixed-bucket log-linear histogram with lock-free atomic recording.
///
/// All methods take `&self`; concurrent recorders never lose counts (each
/// count is one `fetch_add`). Cross-counter reads (e.g. buckets vs `sum`
/// while recorders are active) may be torn, like every other counter in this
/// crate; [`snapshot`](Histogram::snapshot) documents the same tolerance.
///
/// There is deliberately no separate total-count counter: the count is the
/// sum of the buckets, computed at snapshot time, keeping the recording
/// path at two `fetch_add`s plus a rarely-taken max update.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Compiled out under the `obs-stub` feature.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "obs-stub"))]
        {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            // A plain load is ~free next to an atomic RMW, and after warm-up
            // a new maximum is rare — so only those pay the `fetch_max`.
            if value > self.max.load(Ordering::Relaxed) {
                self.max.fetch_max(value, Ordering::Relaxed);
            }
        }
        #[cfg(feature = "obs-stub")]
        let _ = value;
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Fold another histogram's counts into this one. Exact: bucket
    /// boundaries are global constants, so the result is bucket-identical to
    /// recording both sample sets into one histogram.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded: the sum of the buckets (a cold-path scan; the hot
    /// path does not maintain a separate total).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Zero every bucket and rollup.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts and rollups. Taken with
    /// relaxed loads: counts recorded concurrently with the snapshot may be
    /// split across `buckets`/`sum`, which quantile queries tolerate (they
    /// trust the buckets). `count` is derived from the buckets, so it is
    /// always bucket-consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience quantile straight off the live histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Immutable copy of a [`Histogram`]'s state, with quantile queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample with (1-based) rank `ceil(q * n)`. The true sample
    /// is bracketed by that bucket's bounds, so the reported value is within
    /// one bucket width (≤ 1/16 relative error) above it. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_range(i).1;
            }
        }
        bucket_range(self.buckets.len() - 1).1
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples recorded since `earlier` was taken. Bucket counts and
    /// count/sum subtract exactly (counters are monotonic), so interval
    /// quantiles are as accurate as whole-run ones. `max` cannot be
    /// windowed from monotonic state and keeps the whole-run value.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// Names and histograms for every engine latency distribution, in a fixed
/// order shared by [`LatencyStats`] and [`LatencySnapshot`].
macro_rules! latency_histograms {
    ($($field:ident => $label:literal / $doc:literal,)*) => {
        /// The engine's latency histograms, owned by
        /// [`StatsRegistry`](crate::StatsRegistry).
        #[derive(Debug, Default)]
        pub struct LatencyStats {
            $(#[doc = $doc] pub $field: Histogram,)*
        }

        /// Point-in-time copy of every latency histogram.
        #[derive(Clone, Debug, Default)]
        pub struct LatencySnapshot {
            $(#[doc = $doc] pub $field: HistogramSnapshot,)*
        }

        impl LatencyStats {
            pub fn snapshot(&self) -> LatencySnapshot {
                LatencySnapshot {
                    $($field: self.$field.snapshot(),)*
                }
            }

            pub fn reset(&self) {
                $(self.$field.reset();)*
            }
        }

        impl LatencySnapshot {
            /// Samples recorded between `earlier` and `self`.
            pub fn delta(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
                LatencySnapshot {
                    $($field: self.$field.delta(&earlier.$field),)*
                }
            }

            /// `(label, snapshot)` pairs in declaration order.
            pub fn named(&self) -> Vec<(&'static str, &HistogramSnapshot)> {
                vec![$(($label, &self.$field),)*]
            }
        }
    };
}

latency_histograms! {
    action_roundtrip => "action_roundtrip" /
        "Per-action round-trip: dispatch enqueue to reply consumed (ns).",
    stage_dispatch => "stage_dispatch" /
        "Per-stage dispatch: route + enqueue for one whole stage (ns).",
    wal_fsync => "wal_fsync" /
        "One `fsync`/`sync_data` on the log device (ns).",
    wal_flush => "wal_flush" /
        "One group-commit batch flush: drain + append (+ sync) (ns).",
    lock_wait => "lock_wait" /
        "Lock-manager waits that did not get the lock immediately (ns).",
    repartition_drain => "repartition_drain" /
        "Repartition: transaction drain + worker quiesce (ns).",
    repartition_move => "repartition_move" /
        "Repartition: slice/meld + ownership re-assignment after drain (ns).",
    phase_queue_wait => "phase_queue_wait" /
        "Round-trip phase: dispatch enqueue until the worker dequeues (ns).",
    phase_lock_wait => "phase_lock_wait" /
        "Round-trip phase: blocked lock acquisition inside the action body (ns).",
    phase_execute => "phase_execute" /
        "Round-trip phase: action body on the worker, minus lock waits (ns).",
    phase_reply_wait => "phase_reply_wait" /
        "Round-trip phase: worker finish until the session consumes the reply (ns).",
    phase_wal_flush => "phase_wal_flush" /
        "Commit-time wait for the WAL group-commit flush (ns).",
    server_request => "server_request" /
        "Server-side request latency: frame decoded to response enqueued (ns).",
}

impl LatencySnapshot {
    /// Summary table (count / mean / p50 / p90 / p99 / p999 / max, µs) of
    /// every histogram that recorded at least one sample.
    pub fn table(&self) -> crate::Table {
        let mut t = crate::Table::new(
            "Latency histograms (µs)",
            &[
                "histogram",
                "count",
                "mean",
                "p50",
                "p90",
                "p99",
                "p999",
                "max",
            ],
        );
        let us = |ns: u64| crate::Cell::FloatPrec(ns as f64 / 1_000.0, 1);
        for (name, h) in self.named() {
            if h.count == 0 {
                continue;
            }
            t.row(vec![
                crate::Cell::from(name),
                crate::Cell::from(h.count),
                crate::Cell::FloatPrec(h.mean() / 1_000.0, 1),
                us(h.p50()),
                us(h.p90()),
                us(h.p99()),
                us(h.p999()),
                us(h.max),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_16() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_range(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_ranges_tile_the_u64_line() {
        let mut next = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(
                lo,
                next,
                "bucket {i} does not start where {} ended",
                i.wrapping_sub(1)
            );
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
        panic!("buckets did not reach u64::MAX");
    }

    #[test]
    fn relative_error_bounded_by_one_sixteenth() {
        for &v in &[16u64, 17, 100, 1_000, 65_535, 1 << 33, u64::MAX / 3] {
            let (lo, hi) = bucket_range(bucket_index(v));
            assert!(lo <= v && v <= hi);
            assert!(
                hi - lo <= v / 16,
                "bucket width {} too wide for {v}",
                hi - lo
            );
        }
    }

    #[test]
    fn quantiles_and_rollups() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // p50 should bracket 500 within its bucket (width 32 at that octave).
        let p50 = s.p50();
        let (lo, hi) = bucket_range(bucket_index(500));
        assert!(p50 >= lo && p50 <= hi, "p50={p50} not in [{lo},{hi}]");
        assert!(s.p99() >= s.p50());
        assert!(s.p999() >= s.p99());
        assert!(s.quantile(1.0) >= 1000 - 1000 / 16);
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn merge_equals_bulk() {
        let a = Histogram::new();
        let b = Histogram::new();
        let bulk = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            bulk.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            bulk.record(v * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), bulk.snapshot());
    }

    #[test]
    fn delta_windows_counts() {
        let h = Histogram::new();
        h.record(10);
        let first = h.snapshot();
        h.record(10);
        h.record(1 << 20);
        let d = h.snapshot().delta(&first);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets[bucket_index(10)], 1);
        assert_eq!(d.buckets[bucket_index(1 << 20)], 1);
    }

    #[test]
    fn latency_stats_roundtrip() {
        let l = LatencyStats::default();
        l.action_roundtrip.record(1_000);
        l.wal_fsync
            .record_duration(std::time::Duration::from_micros(5));
        let s = l.snapshot();
        assert_eq!(s.action_roundtrip.count, 1);
        assert_eq!(s.wal_fsync.count, 1);
        assert_eq!(s.named().len(), 13);
        let t = s.table();
        assert!(t.render().contains("action_roundtrip"));
        l.reset();
        assert_eq!(l.snapshot().action_roundtrip.count, 0);
    }
}
