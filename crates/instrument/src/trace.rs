//! Allocation-free per-thread event tracing with chrome://tracing export.
//!
//! Each traced thread (worker, session, WAL flusher) owns a [`TraceRing`]: a
//! fixed-capacity ring of 4-word events (start, duration, kind+arg, sequence
//! number) stored as relaxed atomics. Recording an event is four word stores
//! plus a release head bump — no allocation, no locks, cheap enough to stay
//! on by default (and compiled out entirely under the `obs-stub` feature).
//!
//! Rings are *single-writer*: only the owning thread records into its ring.
//! Readers (the trace dump, the flight recorder) run concurrently and
//! tolerate torn entries — an event being overwritten while read is detected
//! by its sequence word not matching the expected sequence and skipped. A
//! torn entry can at worst drop or garble one display row; every access is an
//! atomic load, so there is no undefined behavior (the crate denies
//! `unsafe_code`; the single scoped exception is the `RDTSC` clock intrinsic
//! in [`now_nanos`]'s fast path, which touches no memory).
//!
//! [`TraceRegistry::chrome_json`] renders every ring as a Trace Event JSON
//! document: open chrome://tracing (or <https://ui.perfetto.dev>) and load
//! the file to see multi-stage transactions as nested spans across worker
//! rows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::report::json_string_literal;

/// Events per ring. At 4 words/event this is 8 KiB per traced thread.
pub const DEFAULT_RING_EVENTS: usize = 256;

/// Rings retained by a [`TraceRegistry`]; registrations beyond this are
/// still handed a working ring, it just isn't dumped (bounds memory when a
/// process churns through many short-lived sessions).
const MAX_RINGS: usize = 512;

const WORDS_PER_EVENT: usize = 4;

/// `dur` sentinel marking an instant event (chrome `ph:"i"`).
const INSTANT: u64 = u64::MAX;

/// Process-wide trace clock origin: all trace timestamps are nanoseconds
/// since the first trace call, so rings from different threads align.
fn origin() -> &'static Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds on the shared trace clock.
///
/// On x86_64 with an invariant TSC this reads `RDTSC` and scales by a
/// once-calibrated factor (~5 ns) instead of going through `clock_gettime`
/// (~20 ns). The engine takes on the order of ten timestamps per partitioned
/// transaction, so the difference is a measurable slice of the
/// instrumented-vs-stub overhead gate (`fig_obs`). Everywhere else — and
/// when the TSC is not constant-rate — it falls back to [`Instant`].
#[inline]
pub fn now_nanos() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let cal = tsc::calibration();
        if cal.mult != 0 {
            return tsc::read(cal);
        }
    }
    origin().elapsed().as_nanos() as u64
}

/// RDTSC-based trace clock (x86_64 only). The sole `unsafe` in this crate is
/// the `_rdtsc` intrinsic here, which performs no memory access.
#[cfg(target_arch = "x86_64")]
mod tsc {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Tick→nanosecond conversion: `nanos = (ticks − anchor) * mult >> SHIFT`.
    /// `mult == 0` means "TSC unusable here — take the [`Instant`] fallback".
    pub(super) struct Calibration {
        tsc0: u64,
        pub(super) mult: u64,
    }

    /// Fixed-point fraction bits in `mult`. 24 bits keep the conversion's
    /// rounding error far below the calibration window's own measurement
    /// error.
    const SHIFT: u32 = 24;

    #[allow(unsafe_code)]
    #[inline]
    fn rdtsc() -> u64 {
        // SAFETY: RDTSC reads the time-stamp counter register; no memory is
        // accessed and no CPU state is mutated.
        unsafe { std::arch::x86_64::_rdtsc() }
    }

    /// Deltas across threads and cores are only meaningful when the counter
    /// ticks at a constant rate (`constant_tsc`) and keeps ticking in deep
    /// C-states (`nonstop_tsc`); Linux exposes both directly. Anywhere that
    /// can't be confirmed, the fallback clock is used instead.
    fn tsc_is_invariant() -> bool {
        match std::fs::read_to_string("/proc/cpuinfo") {
            Ok(info) => info.contains("constant_tsc") && info.contains("nonstop_tsc"),
            Err(_) => false,
        }
    }

    pub(super) fn calibration() -> &'static Calibration {
        static CAL: OnceLock<Calibration> = OnceLock::new();
        CAL.get_or_init(|| {
            if !tsc_is_invariant() {
                return Calibration { tsc0: 0, mult: 0 };
            }
            // Measure ticks-per-nanosecond against the OS clock over a ~2 ms
            // spin: the endpoints contribute tens of nanoseconds of error, so
            // the factor is good to ~1e-5 — far below histogram bucket
            // resolution. Paid once, at the process's first trace call.
            let t0 = Instant::now();
            let tsc0 = rdtsc();
            let mut elapsed = t0.elapsed();
            while elapsed < std::time::Duration::from_millis(2) {
                std::hint::spin_loop();
                elapsed = t0.elapsed();
            }
            let ticks = rdtsc().saturating_sub(tsc0);
            if ticks == 0 {
                return Calibration { tsc0: 0, mult: 0 };
            }
            let mult = ((elapsed.as_nanos() << SHIFT) / ticks as u128) as u64;
            Calibration {
                tsc0,
                mult: mult.max(1),
            }
        })
    }

    /// Nanoseconds since calibration. Cross-core TSC skew on invariant-TSC
    /// parts is tens of cycles at most; `saturating_sub` clamps the rare
    /// read that lands "before" the anchor to zero.
    #[inline]
    pub(super) fn read(cal: &Calibration) -> u64 {
        let ticks = rdtsc().saturating_sub(cal.tsc0);
        ((ticks as u128 * cal.mult as u128) >> SHIFT) as u64
    }
}

/// What happened. The discriminant is packed into the event's third word
/// (low 8 bits) next to a 56-bit argument (transaction id, worker index,
/// action count — whatever the site finds useful).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEvent {
    /// Whole client transaction (session ring; arg = txn id).
    Txn = 1,
    /// Routing one stage's actions to workers (session ring; arg = actions).
    /// Reserved: the hot path folds routing into [`TraceEvent::Dispatch`] to
    /// keep per-transaction recording inside the `fig_obs` overhead gate.
    Route = 2,
    /// Dispatch of one stage: route + enqueue on every target worker
    /// (session ring; arg = actions).
    Dispatch = 3,
    /// One action enqueued on a worker's SPSC fast lane (arg = worker).
    /// Reserved off the hot path (see [`TraceEvent::Route`]); the lane/queue
    /// split is still counted in the message statistics.
    LaneSend = 4,
    /// One action enqueued on a worker's MPMC queue (arg = worker).
    /// Reserved off the hot path (see [`TraceEvent::LaneSend`]).
    QueueSend = 5,
    /// One batched dispatch enqueued (arg = actions in the batch).
    /// Reserved off the hot path (see [`TraceEvent::LaneSend`]).
    BatchDispatch = 6,
    /// Waiting for all of a stage's replies (session ring; arg = replies).
    ReplyWait = 7,
    /// One reply consumed (session ring; arg = worker).  Reserved off the
    /// hot path: each reply's arrival shows as the worker span's end, and
    /// the stage's wait window as [`TraceEvent::ReplyWait`].
    ReplyWake = 8,
    /// One action executing on a worker (worker ring; arg = txn id).
    ExecuteAction = 9,
    /// One dispatch batch executing on a worker (worker ring; arg = actions).
    ExecuteBatch = 10,
    /// Transaction committed (session ring; arg = txn id).
    Commit = 11,
    /// Transaction aborted (session ring; arg = txn id).
    Abort = 12,
    /// One group-commit batch flushed (flusher ring; arg = records).
    LogFlush = 13,
    /// Repartition drain + move (arg = table id).
    Repartition = 14,
}

impl TraceEvent {
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::Txn => "txn",
            TraceEvent::Route => "route",
            TraceEvent::Dispatch => "dispatch",
            TraceEvent::LaneSend => "lane_send",
            TraceEvent::QueueSend => "queue_send",
            TraceEvent::BatchDispatch => "batch_dispatch",
            TraceEvent::ReplyWait => "reply_wait",
            TraceEvent::ReplyWake => "reply_wake",
            TraceEvent::ExecuteAction => "execute",
            TraceEvent::ExecuteBatch => "execute_batch",
            TraceEvent::Commit => "commit",
            TraceEvent::Abort => "abort",
            TraceEvent::LogFlush => "log_flush",
            TraceEvent::Repartition => "repartition",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => TraceEvent::Txn,
            2 => TraceEvent::Route,
            3 => TraceEvent::Dispatch,
            4 => TraceEvent::LaneSend,
            5 => TraceEvent::QueueSend,
            6 => TraceEvent::BatchDispatch,
            7 => TraceEvent::ReplyWait,
            8 => TraceEvent::ReplyWake,
            9 => TraceEvent::ExecuteAction,
            10 => TraceEvent::ExecuteBatch,
            11 => TraceEvent::Commit,
            12 => TraceEvent::Abort,
            13 => TraceEvent::LogFlush,
            14 => TraceEvent::Repartition,
            _ => return None,
        })
    }
}

/// One decoded ring entry.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    pub start_nanos: u64,
    /// `None` for instant events.
    pub dur_nanos: Option<u64>,
    pub kind: TraceEvent,
    pub arg: u64,
    pub seq: u64,
}

/// Fixed-capacity single-writer ring of trace events.
pub struct TraceRing {
    id: u64,
    label: String,
    words: Box<[AtomicU64]>,
    /// Total events ever written; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl TraceRing {
    fn new(id: u64, label: String, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let words: Vec<AtomicU64> = (0..capacity * WORDS_PER_EVENT)
            .map(|_| AtomicU64::new(0))
            .collect();
        Self {
            id,
            label,
            words: words.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    fn capacity(&self) -> u64 {
        (self.words.len() / WORDS_PER_EVENT) as u64
    }

    /// Record a completed span. Single-writer: call only from the owning
    /// thread. Compiled out under `obs-stub`.
    #[inline]
    pub fn event(&self, kind: TraceEvent, arg: u64, start_nanos: u64, dur_nanos: u64) {
        self.push(start_nanos, dur_nanos, kind, arg);
    }

    /// Record an instant event stamped now.
    #[inline]
    pub fn instant(&self, kind: TraceEvent, arg: u64) {
        if !cfg!(feature = "obs-stub") {
            self.push(now_nanos(), INSTANT, kind, arg);
        }
    }

    /// Record an instant event at a timestamp the caller already read —
    /// hot paths that just computed a `now_nanos()` for something else
    /// (a round-trip delta, a span end) reuse it instead of paying a
    /// second clock read.
    #[inline]
    pub fn instant_at(&self, kind: TraceEvent, arg: u64, at_nanos: u64) {
        self.push(at_nanos, INSTANT, kind, arg);
    }

    /// Open a span that records itself when the guard drops.
    #[inline]
    pub fn span(&self, kind: TraceEvent, arg: u64) -> TraceScope<'_> {
        let start = if cfg!(feature = "obs-stub") {
            0
        } else {
            now_nanos()
        };
        self.span_at(kind, arg, start)
    }

    /// Open a span at a timestamp the caller already read — the batched
    /// execute loop chains one clock read per action through its guards
    /// instead of paying two. The guard still records on panic unwind via
    /// `Drop`; the happy path ends it with [`TraceScope::complete`] to reuse
    /// the end timestamp as the next span's start.
    #[inline]
    pub fn span_at(&self, kind: TraceEvent, arg: u64, start_nanos: u64) -> TraceScope<'_> {
        TraceScope {
            ring: self,
            kind,
            arg,
            start: start_nanos,
        }
    }

    #[inline]
    fn push(&self, start_nanos: u64, dur_nanos: u64, kind: TraceEvent, arg: u64) {
        #[cfg(not(feature = "obs-stub"))]
        {
            let seq = self.head.load(Ordering::Relaxed);
            let base = (seq % self.capacity()) as usize * WORDS_PER_EVENT;
            self.words[base].store(start_nanos, Ordering::Relaxed);
            self.words[base + 1].store(dur_nanos, Ordering::Relaxed);
            self.words[base + 2].store(kind as u64 | (arg << 8), Ordering::Relaxed);
            self.words[base + 3].store(seq + 1, Ordering::Relaxed);
            // Publish: readers that observe the new head see the words above.
            self.head.store(seq + 1, Ordering::Release);
        }
        #[cfg(feature = "obs-stub")]
        {
            let _ = (start_nanos, dur_nanos, kind, arg);
        }
    }

    /// Decode the retained events, oldest first. Entries overwritten (or
    /// half-written) while being read fail the sequence check and are
    /// skipped.
    pub fn read(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.capacity();
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for seq in first..head {
            let base = (seq % cap) as usize * WORDS_PER_EVENT;
            let start = self.words[base].load(Ordering::Relaxed);
            let dur = self.words[base + 1].load(Ordering::Relaxed);
            let kind_arg = self.words[base + 2].load(Ordering::Relaxed);
            let tag = self.words[base + 3].load(Ordering::Relaxed);
            if tag != seq + 1 {
                continue; // torn: overwritten by the writer mid-read
            }
            let Some(kind) = TraceEvent::from_u8((kind_arg & 0xFF) as u8) else {
                continue;
            };
            out.push(TraceRecord {
                start_nanos: start,
                dur_nanos: if dur == INSTANT { None } else { Some(dur) },
                kind,
                arg: kind_arg >> 8,
                seq,
            });
        }
        out
    }

    fn reset(&self) {
        // Zeroing the sequence words invalidates every retained entry; the
        // head restarts so new events re-stamp them.
        for i in 0..self.capacity() {
            self.words[i as usize * WORDS_PER_EVENT + 3].store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}

/// Span guard returned by [`TraceRing::span`].
pub struct TraceScope<'a> {
    ring: &'a TraceRing,
    kind: TraceEvent,
    arg: u64,
    start: u64,
}

impl TraceScope<'_> {
    /// End the span now, record it, and return the end timestamp so the
    /// caller can reuse the clock read (e.g. as the next chained span's
    /// start). Consumes the guard without running `Drop`, so the event is
    /// recorded exactly once. Returns 0 under `obs-stub`.
    #[inline]
    pub fn complete(self) -> u64 {
        if cfg!(feature = "obs-stub") {
            std::mem::forget(self);
            return 0;
        }
        let end = now_nanos();
        self.ring.event(
            self.kind,
            self.arg,
            self.start,
            end.saturating_sub(self.start),
        );
        std::mem::forget(self);
        end
    }
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        if !cfg!(feature = "obs-stub") {
            let dur = now_nanos().saturating_sub(self.start);
            self.ring.event(self.kind, self.arg, self.start, dur);
        }
    }
}

/// All of a process's trace rings, owned by
/// [`StatsRegistry`](crate::StatsRegistry).
#[derive(Default)]
pub struct TraceRegistry {
    rings: Mutex<Vec<Arc<TraceRing>>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TraceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRegistry")
            .field("rings", &self.rings.lock().len())
            .finish()
    }
}

impl TraceRegistry {
    /// Create and retain a ring for the calling thread. Labels become
    /// chrome://tracing row names (`worker-0`, `session-3`, `wal-flusher`).
    pub fn register(&self, label: impl Into<String>) -> Arc<TraceRing> {
        self.register_with_capacity(label, DEFAULT_RING_EVENTS)
    }

    pub fn register_with_capacity(
        &self,
        label: impl Into<String>,
        capacity: usize,
    ) -> Arc<TraceRing> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(TraceRing::new(id, label.into(), capacity));
        let mut rings = self.rings.lock();
        if rings.len() < MAX_RINGS {
            rings.push(ring.clone());
        }
        ring
    }

    /// Snapshot every retained ring as `(label, events)`.
    pub fn read_all(&self) -> Vec<(String, Vec<TraceRecord>)> {
        let rings = self.rings.lock();
        rings.iter().map(|r| (r.label.clone(), r.read())).collect()
    }

    /// Render every ring as a chrome://tracing Trace Event JSON document.
    /// Timestamps are microseconds on the shared trace clock; each ring is
    /// one thread row (`tid` = ring id) under `pid` 1.
    pub fn chrome_json(&self) -> String {
        let rings = self.rings.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"plp-engine\"}}",
        );
        for ring in rings.iter() {
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                ring.id,
                json_string_literal(&ring.label)
            ));
        }
        for ring in rings.iter() {
            for ev in ring.read() {
                let ts = ev.start_nanos as f64 / 1_000.0;
                out.push(',');
                match ev.dur_nanos {
                    Some(dur) => out.push_str(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"plp\",\"ph\":\"X\",\"pid\":1,\
                         \"tid\":{},\"ts\":{ts:.3},\"dur\":{:.3},\
                         \"args\":{{\"arg\":{}}}}}",
                        ev.kind.name(),
                        ring.id,
                        dur as f64 / 1_000.0,
                        ev.arg
                    )),
                    None => out.push_str(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"plp\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":1,\"tid\":{},\"ts\":{ts:.3},\
                         \"args\":{{\"arg\":{}}}}}",
                        ev.kind.name(),
                        ring.id,
                        ev.arg
                    )),
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Clear every retained ring and drop rings whose owning thread is gone
    /// (we hold the only reference).
    pub fn reset(&self) {
        let mut rings = self.rings.lock();
        rings.retain(|r| Arc::strong_count(r) > 1);
        for r in rings.iter() {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_and_reads_back() {
        let reg = TraceRegistry::default();
        let ring = reg.register("worker-0");
        ring.instant(TraceEvent::Commit, 7);
        {
            let _s = ring.span(TraceEvent::ExecuteAction, 42);
        }
        let events = ring.read();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceEvent::Commit);
        assert_eq!(events[0].arg, 7);
        assert!(events[0].dur_nanos.is_none());
        assert_eq!(events[1].kind, TraceEvent::ExecuteAction);
        assert_eq!(events[1].arg, 42);
        assert!(events[1].dur_nanos.is_some());
    }

    #[test]
    fn chained_spans_record_once_and_share_timestamps() {
        let reg = TraceRegistry::default();
        let ring = reg.register("worker-0");
        let t0 = now_nanos();
        let first = ring.span_at(TraceEvent::ExecuteAction, 1, t0);
        let t1 = first.complete();
        assert!(t1 >= t0);
        let second = ring.span_at(TraceEvent::ExecuteAction, 2, t1);
        drop(second); // the unwind path: Drop records too
        let events = ring.read();
        assert_eq!(events.len(), 2, "complete() must not double-record");
        assert_eq!(events[0].start_nanos, t0);
        assert_eq!(events[0].start_nanos + events[0].dur_nanos.unwrap(), t1);
        assert_eq!(events[1].start_nanos, t1);
        assert_eq!(events[1].arg, 2);
    }

    #[test]
    fn ring_wraps_keeping_latest() {
        let reg = TraceRegistry::default();
        let ring = reg.register_with_capacity("w", 8);
        for i in 0..20u64 {
            ring.instant(TraceEvent::ReplyWake, i);
        }
        let events = ring.read();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().arg, 12);
        assert_eq!(events.last().unwrap().arg, 19);
    }

    #[test]
    fn chrome_json_has_thread_rows_and_events() {
        let reg = TraceRegistry::default();
        let w0 = reg.register("worker-0");
        let w1 = reg.register("worker-1");
        w0.instant(TraceEvent::Commit, 1);
        {
            let _s = w1.span(TraceEvent::ExecuteAction, 2);
        }
        let json = reg.chrome_json();
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(crate::report::json_is_valid(&json), "invalid JSON: {json}");
    }

    #[test]
    fn reset_clears_and_prunes() {
        let reg = TraceRegistry::default();
        let kept = reg.register("kept");
        {
            let _dropped = reg.register("dropped");
        }
        kept.instant(TraceEvent::Commit, 1);
        reg.reset();
        assert!(kept.read().is_empty());
        let labels: Vec<String> = reg.read_all().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["kept".to_string()]);
    }
}
