//! Facade crate for the PLP reproduction.
//!
//! Re-exports the subsystem crates so downstream users (and the
//! workspace-level integration tests under `tests/`) can reach everything
//! through one dependency.

#![forbid(unsafe_code)]

pub use plp_bench as bench;
pub use plp_btree as btree;
pub use plp_client as client;
pub use plp_core as core;
pub use plp_instrument as instrument;
pub use plp_lock as lock;
pub use plp_server as server;
pub use plp_storage as storage;
pub use plp_txn as txn;
pub use plp_wal as wal;
pub use plp_workloads as workloads;
