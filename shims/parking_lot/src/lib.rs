//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the `parking_lot` 0.12 API the workspace uses, implemented on top
//! of `std::sync`. Poisoning is swallowed (parking_lot has no poisoning): a
//! panic while holding a lock leaves the data accessible, matching
//! parking_lot semantics closely enough for this codebase.
//!
//! Swap the workspace dependency back to the real crate when network access
//! is available; no call sites need to change.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard wrapping the std guard in an `Option` so [`Condvar::wait`] can take
/// the inner guard out and put the re-acquired one back (parking_lot condvars
/// take `&mut MutexGuard`, std condvars consume the guard by value).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }

    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(unpoison(self.inner.wait(g)));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = unpoison(
            self.inner
                .wait_timeout(g, timeout)
                .map_err(|e| PoisonError::new(e.into_inner())),
        );
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: unpoison(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: unpoison(self.inner.write()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(0u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
