//! The lock-free MPMC queues behind [`crate::channel`].
//!
//! Two flavors, both multi-producer/multi-consumer and FIFO:
//!
//! * [`Bounded`] — a Vyukov-style bounded array queue.  Each slot carries a
//!   `sequence` number; producers and consumers claim positions with a CAS on
//!   a global ticket counter and then synchronize on the slot's sequence
//!   alone, so unrelated operations never touch the same cache line and there
//!   is no lock anywhere.
//! * [`Unbounded`] — a segmented (block-linked) queue in the style of
//!   crossbeam-channel's "list" flavor: positions are claimed with a CAS on a
//!   global index, blocks of [`BLOCK_CAP`] slots are linked as the index
//!   grows, and fully-consumed blocks are freed cooperatively through the
//!   per-slot `WRITE`/`READ`/`DESTROY` state protocol.
//!
//! # Memory-ordering argument
//!
//! The proof obligations are the same for both flavors:
//!
//! 1. **A consumer never reads an unwritten value.**  Producers publish the
//!    value with a `Release` store to the slot's sequence/state word *after*
//!    writing the value; consumers `Acquire`-load that word before reading
//!    the value, so the value write *happens-before* the read.
//! 2. **A producer never overwrites an unread value** (bounded flavor).  The
//!    consumer advances the slot's sequence to the next lap's "empty" marker
//!    with a `Release` store *after* moving the value out; a producer claims
//!    the slot for the next lap only after `Acquire`-loading that sequence.
//!    Markers live in a doubled position space so "full" and "free for the
//!    next lap" stay distinct down to capacity 1 (see [`BoundedSlot`]).
//! 3. **Two producers (or two consumers) never claim the same position.**
//!    Tickets are claimed with `compare_exchange` on the shared counter; each
//!    position is won exactly once.
//! 4. **Block reclamation is safe** (unbounded flavor).  A block is freed
//!    only after every slot reached the `READ` state (or was handed the
//!    `DESTROY` baton by the reader that finished last); readers hold no
//!    references past their `fetch_or(READ)`, and head/tail block pointers
//!    are advanced (`Release`) *before* the index that allows other threads
//!    to reach the new block is published, so a stale block pointer can never
//!    be paired with a new index.
//!
//! The queues return "empty"/"full" from `try_pop`/`try_push` without
//! blocking; [`crate::channel`] layers spinning and parking on top.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crate::metrics;
// std in normal builds, the loom model checker under the model-check lane;
// see `crate::primitives`.
use crate::primitives::{fence, spin_wait, yield_now, AtomicPtr, AtomicUsize, Ordering};

/// Pads and aligns a value to 64 bytes (one cache line on the platforms we
/// care about) so the producer and consumer counters never share a line.
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub T);

/// Whether this host exposes a single hardware thread.  Spinning can never
/// help there — the peer whose progress we are waiting for cannot run until
/// we yield — so the backoff degenerates to yield-then-park.
pub(crate) fn single_cpu() -> bool {
    use std::sync::OnceLock;
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() == 1)
            .unwrap_or(false)
    })
}

/// Truncated exponential backoff used everywhere a thread waits for another
/// thread's in-flight step: spin briefly, then yield the CPU.  `snooze`
/// returns `false` once the caller should stop spinning and park instead.
pub(crate) struct Backoff {
    step: u32,
    single_cpu: bool,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;
    /// Parking threshold on a single-CPU host: yield a couple of times (the
    /// scheduler may run the peer immediately), then park.
    const SINGLE_CPU_YIELD_LIMIT: u32 = 2;

    pub(crate) fn new() -> Self {
        Self {
            step: 0,
            single_cpu: single_cpu(),
        }
    }

    /// Light backoff for CAS-retry loops.
    pub(crate) fn spin(&mut self) {
        if self.single_cpu {
            yield_now();
        } else {
            spin_wait(1u32 << self.step.min(Self::SPIN_LIMIT));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Spin, escalating to `yield_now` after the spin budget.  Returns `true`
    /// while waiting longer still makes sense (below the parking threshold).
    pub(crate) fn snooze(&mut self) -> bool {
        if self.single_cpu {
            yield_now();
            self.step = self.step.saturating_add(1);
            return self.step <= Self::SINGLE_CPU_YIELD_LIMIT;
        }
        if self.step <= Self::SPIN_LIMIT {
            spin_wait(1u32 << self.step);
        } else {
            yield_now();
        }
        self.step = self.step.saturating_add(1);
        self.step <= Self::YIELD_LIMIT
    }
}

// ---------------------------------------------------------------------------
// Bounded: Vyukov MPMC array queue.
// ---------------------------------------------------------------------------

struct BoundedSlot<T> {
    /// Lap marker over a *doubled* position space: `2*pos` for an empty slot
    /// awaiting the producer of position `pos`, `2*pos + 1` once that value
    /// is in, `2*(pos + capacity)` once the consumer freed it for the next
    /// lap.  Doubling keeps the "full" and "free for the next lap" markers
    /// distinct even at capacity 1 (with plain `pos + 1` / `pos + capacity`
    /// markers they collide there, and a `bounded(1)` channel — which the
    /// engine uses for quiesce handshakes — would corrupt).
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Vyukov-style bounded MPMC queue with exactly `capacity` slots.
pub(crate) struct Bounded<T> {
    slots: Box<[BoundedSlot<T>]>,
    capacity: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: the only non-Sync state is the slot value cells, and each is
// handed off through its slot's `sequence` stamp: the producer writes the
// cell before the Release store of `2*pos + 1`, the consumer reads it after
// the Acquire load of that stamp, and the doubled-lap encoding ensures one
// producer and one consumer per (slot, lap).  `T: Send` is required because
// values move across threads.
unsafe impl<T: Send> Send for Bounded<T> {}
// SAFETY: as above — all shared slot access is serialized by the stamp
// protocol; the positions are atomics.
unsafe impl<T: Send> Sync for Bounded<T> {}

impl<T> Bounded<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|i| BoundedSlot {
                sequence: AtomicUsize::new(2 * i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            capacity,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Lock-free push; hands the value back when the queue is full.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % self.capacity];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (2 * pos) as isize;
            if diff == 0 {
                // The slot is free on this lap: claim the ticket.
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `pos`, so we are the
                        // sole writer of this slot until the consumer of this
                        // lap frees it; the consumer reads only after the
                        // Release store below publishes the write.
                        unsafe { slot.value.get().write(MaybeUninit::new(value)) };
                        slot.sequence.store(2 * pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => {
                        pos = current;
                        metrics::enqueue_spin();
                        backoff.spin();
                    }
                }
            } else if diff < 0 {
                // The slot still holds last lap's value: the queue is full.
                return Err(value);
            } else {
                // Another producer claimed this position; catch up.
                metrics::enqueue_spin();
                backoff.spin();
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Lock-free pop; `None` when the queue is empty (a claimed-but-unwritten
    /// slot counts as empty — the caller retries or parks, and the producer's
    /// wakeup follows its sequence store).
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % self.capacity];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (2 * pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the Acquire load of `2*pos + 1` above saw
                        // the producer's Release store, so the value write
                        // happens-before this read; the CAS claimed ticket
                        // `pos`, so no other consumer reads this (slot, lap).
                        let value = unsafe { slot.value.get().read().assume_init() };
                        slot.sequence
                            .store(2 * (pos + self.capacity), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => {
                        pos = current;
                        metrics::dequeue_spin();
                        backoff.spin();
                    }
                }
            } else if diff < 0 {
                return None;
            } else {
                // Another consumer claimed this position; catch up.
                metrics::dequeue_spin();
                backoff.spin();
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        loop {
            let tail = self.enqueue_pos.0.load(Ordering::SeqCst);
            let head = self.dequeue_pos.0.load(Ordering::SeqCst);
            // Re-read to make sure the pair is consistent.
            if self.enqueue_pos.0.load(Ordering::SeqCst) == tail {
                return tail.saturating_sub(head);
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }
}

impl<T> Drop for Bounded<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// Unbounded: segmented (block-linked) MPMC queue.
// ---------------------------------------------------------------------------

/// Messages per block.  One position per lap ([`LAP`]) is a sentinel no
/// message occupies: the producer that claims the last real slot of a block
/// installs the next block and bumps the index past the sentinel.
#[cfg(not(any(plp_loom, feature = "loom-model")))]
pub(crate) const BLOCK_CAP: usize = 31;
/// Shrunk under the model checker so a model test crosses block boundaries
/// and reaches the WRITE/READ/DESTROY reclamation protocol within a few
/// operations (the arithmetic nowhere assumes a particular block size).
#[cfg(any(plp_loom, feature = "loom-model"))]
pub(crate) const BLOCK_CAP: usize = 3;
const LAP: usize = BLOCK_CAP + 1;

/// Slot states (bit flags).
const WRITE: usize = 1;
const READ: usize = 2;
const DESTROY: usize = 4;

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new() -> Box<Self> {
        Box::new(Self {
            next: AtomicPtr::new(std::ptr::null_mut()),
            slots: std::array::from_fn(|_| Slot {
                value: UnsafeCell::new(MaybeUninit::uninit()),
                state: AtomicUsize::new(0),
            }),
        })
    }

    /// Wait for the producer that claimed the last slot to link the next
    /// block (it does so before writing its own value, so this is short).
    fn wait_next(&self) -> *mut Block<T> {
        let mut backoff = Backoff::new();
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            metrics::dequeue_spin();
            backoff.snooze();
        }
    }

    /// Free the block once every reader is done with it.  A slot whose reader
    /// is still mid-read receives the `DESTROY` baton instead; that reader
    /// continues the destruction from the next slot when it finishes.
    ///
    /// # Safety
    ///
    /// `this` must be a block unlinked from the queue (head has moved past
    /// it), with slots `0..start` already known read — so the only threads
    /// still touching it are readers of `start..`, and the baton protocol
    /// below picks exactly one thread to free it.
    ///
    /// ## Audit note (reclamation)
    ///
    /// The freeing decision is per-slot two-phase: a reader is "done" only
    /// once it `fetch_or(READ)`s *after* its value read, and destroy only
    /// proceeds past a slot when it observes READ — either directly
    /// (Acquire, pairing with the reader's AcqRel RMW) or by losing the
    /// `fetch_or(DESTROY)` race, in which case that reader saw DESTROY and
    /// continues destruction itself *after* finishing its read.  Hence no
    /// thread can free the block while another still holds a `&slot` —
    /// the use-after-free candidate here is a reader still between its
    /// value read and its READ flag, and the baton handoff is what makes
    /// that window safe.  `model_unbounded_block_reclamation` explores this
    /// under the checker.
    unsafe fn destroy(this: *mut Block<T>, start: usize) {
        // The last slot's reader is the one that starts destruction, so the
        // last slot itself never needs the baton.
        for i in start..BLOCK_CAP - 1 {
            // SAFETY: caller guarantees `this` is unlinked and not yet
            // freed; only the single baton holder runs this loop.
            let slot = unsafe { &(*this).slots[i] };
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                return;
            }
        }
        // SAFETY: every slot is READ (loop above) and the block came from
        // `Box::into_raw` in `push`; we are the unique freeing thread.
        unsafe { drop(Box::from_raw(this)) };
    }
}

struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// Unbounded block-linked MPMC queue.
pub(crate) struct Unbounded<T> {
    head: CachePadded<Position<T>>,
    tail: CachePadded<Position<T>>,
}

// SAFETY: slot value cells are handed off through the slot's WRITE flag
// (Release on the producer side, Acquire on the consumer side) and each
// position is claimed by exactly one producer and one consumer via the
// index CASes; block lifetime is governed by the READ/DESTROY protocol
// (see `Block::destroy`).  `T: Send` because values move across threads.
unsafe impl<T: Send> Send for Unbounded<T> {}
// SAFETY: as above — shared access is serialized by the index/flag
// protocols; everything else is atomics.
unsafe impl<T: Send> Sync for Unbounded<T> {}

impl<T> Unbounded<T> {
    pub(crate) fn new() -> Self {
        let first = Box::into_raw(Block::new());
        Self {
            head: CachePadded(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            }),
            tail: CachePadded(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            }),
        }
    }

    /// Lock-free push (never fails; allocates a new block every
    /// [`BLOCK_CAP`] messages).
    pub(crate) fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.0.index.load(Ordering::Acquire);
        let mut block = self.tail.0.block.load(Ordering::Acquire);
        let mut next_block: Option<Box<Block<T>>> = None;
        loop {
            let offset = tail % LAP;
            if offset == BLOCK_CAP {
                // Another producer claimed the last slot and is installing
                // the next block; wait for it to bump the index.
                metrics::enqueue_spin();
                backoff.snooze();
                tail = self.tail.0.index.load(Ordering::Acquire);
                block = self.tail.0.block.load(Ordering::Acquire);
                continue;
            }
            // About to claim the last slot: pre-allocate the next block so
            // the critical install step is just two stores.
            if offset + 1 == BLOCK_CAP && next_block.is_none() {
                next_block = Some(Block::new());
            }
            match self.tail.0.index.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the CAS claimed position `tail`, making us the
                // sole writer of that slot; `block` is alive because head
                // cannot pass a slot whose WRITE flag is unset, so the
                // READ/DESTROY protocol cannot free it under us.
                Ok(_) => unsafe {
                    if offset + 1 == BLOCK_CAP {
                        // Install the next block and skip the sentinel.  The
                        // block pointer is published *before* the index so a
                        // thread that sees the new index also sees the new
                        // block (Release/Acquire pairing on the index).
                        let next = Box::into_raw(next_block.take().unwrap());
                        self.tail.0.block.store(next, Ordering::Release);
                        self.tail.0.index.fetch_add(1, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }
                    let slot = &(*block).slots[offset];
                    slot.value.get().write(MaybeUninit::new(value));
                    slot.state.fetch_or(WRITE, Ordering::Release);
                    return;
                },
                Err(current) => {
                    tail = current;
                    block = self.tail.0.block.load(Ordering::Acquire);
                    metrics::enqueue_spin();
                    backoff.spin();
                }
            }
        }
    }

    /// Lock-free pop; `None` when no message has been claimed by a producer.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut head = self.head.0.index.load(Ordering::Acquire);
        let mut block = self.head.0.block.load(Ordering::Acquire);
        loop {
            let offset = head % LAP;
            if offset == BLOCK_CAP {
                // The consumer of the last slot is moving head to the next
                // block; wait for the bump.
                metrics::dequeue_spin();
                backoff.snooze();
                head = self.head.0.index.load(Ordering::Acquire);
                block = self.head.0.block.load(Ordering::Acquire);
                continue;
            }
            // Empty check: no producer has claimed position `head` yet.  The
            // fence orders this tail load after our head load (Dekker-style
            // with the producer's SeqCst CAS on the tail index).
            fence(Ordering::SeqCst);
            let tail = self.tail.0.index.load(Ordering::Relaxed);
            if head == tail {
                return None;
            }
            match self.head.0.index.compare_exchange_weak(
                head,
                head + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the CAS claimed position `head`, making us the
                // sole reader of that slot; the block stays alive until this
                // reader sets its READ flag (or takes the DESTROY baton) —
                // see the audit note on `Block::destroy`.
                Ok(_) => unsafe {
                    if offset + 1 == BLOCK_CAP {
                        // We claimed the last slot: advance head to the next
                        // block (installed by the producer of that slot) and
                        // skip the sentinel.  Block pointer first, index
                        // second — see `push`.
                        let next = (*block).wait_next();
                        self.head.0.block.store(next, Ordering::Release);
                        self.head.0.index.fetch_add(1, Ordering::Release);
                    }
                    let slot = &(*block).slots[offset];
                    // The producer claimed this position before us (head <
                    // tail) but may not have finished writing; wait for it.
                    let mut write_backoff = Backoff::new();
                    while slot.state.load(Ordering::Acquire) & WRITE == 0 {
                        metrics::dequeue_spin();
                        write_backoff.snooze();
                    }
                    let value = slot.value.get().read().assume_init();
                    if offset + 1 == BLOCK_CAP {
                        // Last reader of the block starts its destruction.
                        Block::destroy(block, 0);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        // The destruction baton was handed to us; continue.
                        Block::destroy(block, offset + 1);
                    }
                    return Some(value);
                },
                Err(current) => {
                    head = current;
                    block = self.head.0.block.load(Ordering::Acquire);
                    metrics::dequeue_spin();
                    backoff.spin();
                }
            }
        }
    }

    /// Real messages in positions `0..pos` (sentinels excluded).
    fn message_count(pos: usize) -> usize {
        (pos / LAP) * BLOCK_CAP + (pos % LAP).min(BLOCK_CAP)
    }

    pub(crate) fn len(&self) -> usize {
        loop {
            let tail = self.tail.0.index.load(Ordering::SeqCst);
            let head = self.head.0.index.load(Ordering::SeqCst);
            if self.tail.0.index.load(Ordering::SeqCst) == tail {
                return Self::message_count(tail).saturating_sub(Self::message_count(head));
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Spsc: single-producer bounded ring (the channel layer's fast lanes).
// ---------------------------------------------------------------------------

/// A Vyukov-style bounded ring with the producer-side CAS removed: each slot
/// carries the same doubled-lap `sequence` stamp as [`Bounded`], but because
/// there is exactly one producer, claiming a position is a plain load of the
/// producer-private tail counter — no ticket CAS, no cache-line contention
/// with other producers.  The consumer side keeps the CAS claim so that a
/// cloned `Receiver` cannot double-read a slot (in the engine there is one
/// consumer per worker queue and the CAS is uncontended).
///
/// # Memory-ordering argument
///
/// Identical to [`Bounded`] obligations 1 and 2: the producer publishes the
/// value with a `Release` store of `2*pos + 1` *after* writing the cell; the
/// consumer `Acquire`-loads that stamp before reading, and frees the slot
/// with a `Release` store of `2*(pos + capacity)` *after* moving the value
/// out, which the producer `Acquire`-loads before reusing the slot.
/// Obligation 3 (unique position claim) holds on the producer side by the
/// unique-producer contract of [`Spsc::try_push`] (enforced by the channel
/// layer: the producer handle is neither `Clone` nor `Sync`) and on the
/// consumer side by the head CAS.  `model_spsc_publication` explores the
/// protocol under the checker; the wakeup handshake with the channel gate is
/// pinned by `model_lane_send_wakes_parked_receiver`.
pub(crate) struct Spsc<T> {
    slots: Box<[BoundedSlot<T>]>,
    capacity: usize,
    /// Producer's next position.  Written only by the (unique) producer.
    tail: CachePadded<AtomicUsize>,
    /// Consumer's next position.  CAS-claimed by consumers.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: slot value cells are handed off through the doubled-lap sequence
// stamps exactly as in `Bounded` (Release publish, Acquire read); the
// unique-producer contract of `try_push` plus the consumer-side head CAS
// ensure one writer and one reader per (slot, lap).  `T: Send` because
// values move across threads.
unsafe impl<T: Send> Send for Spsc<T> {}
// SAFETY: as above — all shared slot access is serialized by the stamp
// protocol; the positions are atomics.
unsafe impl<T: Send> Sync for Spsc<T> {}

impl<T> Spsc<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|i| BoundedSlot {
                sequence: AtomicUsize::new(2 * i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            capacity,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Wait-free push; hands the value back when the ring is full (the
    /// caller falls back to the shared MPMC queue).
    ///
    /// # Safety
    ///
    /// The caller must be the ring's unique producer: two concurrent
    /// `try_push` calls would claim the same position and race on the slot
    /// cell.  The channel layer enforces this by construction — the only
    /// producer handle (`channel::LaneSender`) is neither `Clone` nor `Sync`.
    pub(crate) unsafe fn try_push(&self, value: T) -> Result<(), T> {
        // Relaxed: only the unique producer writes `tail`, so this load sees
        // our own previous store.
        let pos = self.tail.0.load(Ordering::Relaxed);
        let slot = &self.slots[pos % self.capacity];
        if slot.sequence.load(Ordering::Acquire) != 2 * pos {
            // The slot still holds last lap's value: the ring is full.
            return Err(value);
        }
        // SAFETY: the sequence stamp `2*pos` says the consumer freed this
        // slot for lap `pos`, and the unique-producer contract makes us the
        // sole writer; the consumer reads only after the Release store below.
        unsafe { slot.value.get().write(MaybeUninit::new(value)) };
        slot.sequence.store(2 * pos + 1, Ordering::Release);
        self.tail.0.store(pos + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Lock-free pop; `None` when the ring is empty.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % self.capacity];
            if slot.sequence.load(Ordering::Acquire) != 2 * pos + 1 {
                return None;
            }
            match self.head.0.compare_exchange_weak(
                pos,
                pos + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // SAFETY: the Acquire load of `2*pos + 1` above saw the
                    // producer's Release store, so the value write
                    // happens-before this read; the CAS claimed position
                    // `pos`, so no other consumer reads this (slot, lap).
                    let value = unsafe { slot.value.get().read().assume_init() };
                    slot.sequence
                        .store(2 * (pos + self.capacity), Ordering::Release);
                    return Some(value);
                }
                Err(current) => {
                    pos = current;
                    metrics::dequeue_spin();
                    backoff.spin();
                }
            }
        }
    }

    /// Whether the slot at the consumer position holds a value.  Used by the
    /// channel gate's sleep predicate; the caller issues the `SeqCst` fence
    /// that pairs this check with the producer's post-push fence (see
    /// `channel::Shared::lane_ready`).
    pub(crate) fn has_message(&self) -> bool {
        let pos = self.head.0.load(Ordering::Relaxed);
        self.slots[pos % self.capacity]
            .sequence
            .load(Ordering::Acquire)
            == 2 * pos + 1
    }
}

impl<T> Drop for Spsc<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

impl<T> Drop for Unbounded<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the claimed-but-unpopped values and free the
        // remaining block chain.  Blocks before `head` were already freed by
        // the READ/DESTROY protocol.
        let mut head = *self.head.0.index.get_mut();
        let tail = *self.tail.0.index.get_mut();
        let mut block = *self.head.0.block.get_mut();
        // SAFETY: `&mut self` proves no concurrent access; every position in
        // `head..tail` holds an initialized, unread value, and the block
        // chain from `head`'s block onward is owned by the queue.
        unsafe {
            while head != tail {
                let offset = head % LAP;
                if offset == BLOCK_CAP {
                    let next = *(*block).next.get_mut();
                    drop(Box::from_raw(block));
                    block = next;
                } else {
                    let slot = &mut (*block).slots[offset];
                    slot.value.get_mut().assume_init_drop();
                }
                head += 1;
            }
            if !block.is_null() {
                drop(Box::from_raw(block));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_and_capacity() {
        let q = Bounded::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_push(4), Err(4));
        assert!(q.is_full());
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), Some(4));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_capacity_one_never_overwrites() {
        // Regression: with single-space lap markers, capacity 1 confused
        // "full" with "free for the next lap" and a second push silently
        // overwrote the queued value (then try_pop livelocked).
        let q = Bounded::new(1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
        assert!(q.is_full());
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), None);
        for lap in 0..100u64 {
            assert!(q.try_push(lap).is_ok());
            assert_eq!(q.try_push(lap), Err(lap));
            assert_eq!(q.try_pop(), Some(lap));
        }
    }

    #[test]
    fn unbounded_crosses_many_blocks_in_order() {
        let q = Unbounded::new();
        let n = (BLOCK_CAP * 5 + 7) as u64;
        for i in 0..n {
            q.push(i);
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn unbounded_drop_releases_pending_values() {
        // Drop with values still queued across a block boundary; run under
        // the test suite's normal leak checks (asan when available).
        let q = Unbounded::new();
        for i in 0..(BLOCK_CAP * 3) as u64 {
            q.push(vec![i; 4]);
        }
        for _ in 0..BLOCK_CAP + 5 {
            q.try_pop().unwrap();
        }
        drop(q);
    }

    #[test]
    fn spsc_fifo_full_and_lap_reuse() {
        let q = Spsc::new(2);
        // SAFETY: this test thread is the unique producer.
        unsafe {
            assert!(q.try_push(1).is_ok());
            assert!(q.try_push(2).is_ok());
            assert_eq!(q.try_push(3), Err(3));
        }
        assert!(q.has_message());
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert!(!q.has_message());
        for lap in 0..100u64 {
            // SAFETY: as above — single producer.
            unsafe {
                assert!(q.try_push(lap).is_ok());
            }
            assert_eq!(q.try_pop(), Some(lap));
        }
    }

    #[test]
    fn spsc_drop_releases_pending_values() {
        let q = Spsc::new(8);
        for i in 0..5u64 {
            // SAFETY: single producer.
            unsafe {
                q.try_push(vec![i; 4]).unwrap();
            }
        }
        q.try_pop().unwrap();
        drop(q);
    }

    #[test]
    #[cfg_attr(miri, ignore = "20k-element spin transfer is too slow under miri")]
    fn spsc_concurrent_transfer() {
        let q = std::sync::Arc::new(Spsc::new(4));
        let total = 20_000u64;
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..total {
                    let mut v = i;
                    loop {
                        // SAFETY: this thread is the unique producer.
                        match unsafe { q.try_push(v) } {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < total {
            if let Some(v) = q.try_pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore = "20k-element spin transfer is too slow under miri")]
    fn bounded_concurrent_transfer() {
        let q = std::sync::Arc::new(Bounded::new(8));
        let total = 20_000u64;
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..total {
                    let mut v = i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut seen = 0u64;
        let mut expected = 0u64;
        while seen < total {
            if let Some(v) = q.try_pop() {
                assert_eq!(v, expected);
                expected += 1;
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
