//! MPMC channels over the lock-free queues of [`crate::queue`].
//!
//! `bounded`/`unbounded` return `Sender`/`Receiver` pairs that are both
//! `Clone + Send + Sync`, with crossbeam's disconnect semantics.  The hot
//! path — `send` on a non-full channel, `recv` on a non-empty one — is a
//! single lock-free queue operation plus a sleeper check (one fence and one
//! atomic load when nobody sleeps); no mutex is touched.  Blocking is
//! layered on top: a bounded spin-then-yield phase first, then a park on a
//! [`Gate`] (mutex + condvar used *only* while someone actually sleeps).
//!
//! # Waking and disconnects
//!
//! Message arrival wakes **one** sleeper (`notify_one`): exactly one message
//! became available, so waking more would thunder.  Disconnects wake **all**
//! sleepers on both gates: every blocked peer must observe the hangup.  (The
//! previous mutex-based shim got this right too, but the distinction is now
//! load-bearing enough to be covered by `tests/mpmc_semantics.rs` for both
//! implementations.)
//!
//! # Lost-wakeup freedom
//!
//! The classic race — a sender pushes and checks for sleepers while a
//! receiver checks for messages and goes to sleep — is broken Dekker-style:
//! the waiter increments the gate's sleeper count (`SeqCst`) *before*
//! re-checking the queue under the gate lock, and the notifier issues a
//! `SeqCst` fence after its queue operation *before* loading the sleeper
//! count.  In the seq-cst total order one of the two must see the other:
//! either the notifier sees the sleeper and takes the gate lock to notify
//! (serializing with the waiter's re-check), or the waiter's re-check sees
//! the message and never sleeps.
//!
//! # Fast lanes
//!
//! [`Sender::fast_lane`] attaches a dedicated single-producer ring
//! ([`crate::queue::Spsc`]) to the channel and returns a [`LaneSender`]: a
//! producer handle whose `send` is a wait-free slot write with no CAS and no
//! contention with other producers, falling back to the shared MPMC queue
//! when the ring is full.  Lanes share the channel's `not_empty` gate, so
//! [`Receiver::wait_any`] parks until *either* the main queue or some lane
//! has a message.
//!
//! ## Audit note (lane ordering)
//!
//! Two properties are load-bearing for callers that keep control messages on
//! the main queue (the engine's quiesce/shutdown protocol):
//!
//! 1. **No lost wakeup for lane sends.**  The same Dekker pairing as above:
//!    the lane push's `Release` stamp store precedes the notifier's `SeqCst`
//!    fence in [`Gate::notify`]; the waiter's sleeper increment (`SeqCst`)
//!    precedes the `SeqCst` fence in [`Shared::lane_ready`], which precedes
//!    its `Acquire` stamp load.  Fence-to-fence ordering makes one side see
//!    the other.  Pinned by `model_lane_send_wakes_parked_receiver`.
//! 2. **Lane messages enqueued before a main-queue message are visible to a
//!    receiver that drains lanes after popping it.**  The producer's lane
//!    push (Release stamp store) is program-ordered before its main-queue
//!    push, whose pop by the receiver builds a Release/Acquire edge; the
//!    receiver's subsequent `Acquire` stamp load therefore sees the lane
//!    value.  Pinned by `model_lane_vs_control_ordering`.

use std::fmt;
use std::marker::PhantomData;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

// std in normal builds, the loom model checker under the model-check lane;
// see `crate::primitives`.
use crate::primitives::{fence, Arc, AtomicPtr, AtomicUsize, Condvar, Mutex, Ordering};

use crate::metrics;
use crate::queue::{Backoff, Bounded, Spsc, Unbounded};

pub mod mutex_baseline;

fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Error returned by [`Sender::send`] when every receiver has hung up.
/// The unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.pad("receiving on an empty channel"),
            TryRecvError::Disconnected => f.pad("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.pad("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => f.pad("receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Parking place for threads that exhausted their spin budget.  The mutex is
/// taken only by threads that are about to sleep and by notifiers that saw a
/// non-zero sleeper count.
struct Gate {
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Self {
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Park until `ready()` holds.  `ready` is re-checked under the gate
    /// lock after registering as a sleeper, so a notification issued for a
    /// state change we have not seen yet cannot be lost.
    fn wait_until(&self, ready: impl Fn() -> bool) {
        let mut guard = unpoison(self.lock.lock());
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        loop {
            if ready() {
                break;
            }
            metrics::park();
            guard = unpoison(self.cv.wait(guard));
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// [`Gate::wait_until`] with a deadline.  Returns `false` on timeout
    /// with `ready()` still not holding.
    fn wait_deadline(&self, ready: impl Fn() -> bool, deadline: Instant) -> bool {
        let mut guard = unpoison(self.lock.lock());
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let woke = loop {
            if ready() {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            metrics::park();
            let (g, _) = unpoison(self.cv.wait_timeout(guard, deadline - now));
            guard = g;
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        woke
    }

    /// Wake one sleeper (message arrival) or all of them (disconnect).
    fn notify(&self, all: bool) {
        // Dekker pairing with the sleeper-count increment in `wait_*`; the
        // caller's queue operation precedes this fence.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        metrics::wakeup();
        let _guard = unpoison(self.lock.lock());
        if all {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
    }
}

enum Flavor<T> {
    Bounded(Bounded<T>),
    Unbounded(Unbounded<T>),
}

/// One single-producer fast lane.  Nodes form an append-only intrusive list
/// hanging off [`Shared::lanes`]; they are freed only when the channel's last
/// handle drops (`Shared::drop`), so a raw node pointer is valid for as long
/// as its holder keeps the channel alive.
struct LaneNode<T> {
    queue: Spsc<T>,
    next: AtomicPtr<LaneNode<T>>,
}

struct Shared<T> {
    flavor: Flavor<T>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Receivers sleep here when the channel is empty.
    not_empty: Gate,
    /// Senders sleep here when a bounded channel is full.
    not_full: Gate,
    /// Append-only list of single-producer fast lanes ([`Sender::fast_lane`]).
    lanes: AtomicPtr<LaneNode<T>>,
}

impl<T> Shared<T> {
    fn try_push(&self, value: T) -> Result<(), T> {
        match &self.flavor {
            Flavor::Bounded(q) => q.try_push(value),
            Flavor::Unbounded(q) => {
                q.push(value);
                Ok(())
            }
        }
    }

    fn try_pop(&self) -> Option<T> {
        match &self.flavor {
            Flavor::Bounded(q) => q.try_pop(),
            Flavor::Unbounded(q) => q.try_pop(),
        }
    }

    fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Bounded(q) => q.len(),
            Flavor::Unbounded(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        match &self.flavor {
            Flavor::Bounded(q) => q.is_empty(),
            Flavor::Unbounded(q) => q.is_empty(),
        }
    }

    fn is_full(&self) -> bool {
        match &self.flavor {
            Flavor::Bounded(q) => q.is_full(),
            Flavor::Unbounded(_) => false,
        }
    }

    fn disconnected_senders(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_receivers(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }

    /// Bookkeeping after a successful pop: free space may unblock a sender.
    fn after_pop(&self) {
        if matches!(self.flavor, Flavor::Bounded(_)) {
            self.not_full.notify(false);
        }
    }

    /// Whether any fast lane has a message.  The leading `SeqCst` fence pairs
    /// with the one in [`Gate::notify`] after a lane push (Dekker-style, see
    /// the module's lane-ordering audit note), so a receiver that registered
    /// as a sleeper before calling this cannot miss a concurrent lane send.
    fn lane_ready(&self) -> bool {
        fence(Ordering::SeqCst);
        let mut node = self.lanes.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: lane nodes are append-only and freed only in
            // `Shared::drop`, which requires exclusive access; holding `&self`
            // keeps every published node alive.
            let lane = unsafe { &*node };
            if lane.queue.has_message() {
                return true;
            }
            node = lane.next.load(Ordering::Acquire);
        }
        false
    }

    /// Pop one message from the first non-empty fast lane.
    fn try_pop_lane(&self) -> Option<T> {
        let mut node = self.lanes.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: as in `lane_ready` — published nodes outlive `&self`.
            let lane = unsafe { &*node };
            if let Some(v) = lane.queue.try_pop() {
                return Some(v);
            }
            node = lane.next.load(Ordering::Acquire);
        }
        None
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let mut node = *self.lanes.get_mut();
        while !node.is_null() {
            // SAFETY: `&mut self` proves no concurrent access; every node was
            // leaked from a `Box` in `Sender::fast_lane` and appears in the
            // list exactly once.
            let mut lane = unsafe { Box::from_raw(node) };
            node = *lane.next.get_mut();
        }
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Every receiver blocked on an empty queue must observe the
            // disconnect: wake all, not one.
            self.shared.not_empty.notify(true);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Every sender blocked on a full bounded queue must observe the
            // disconnect: wake all, not one.
            self.shared.not_full.notify(true);
        }
    }
}

/// Single-producer handle for a dedicated fast lane of one channel, created
/// by [`Sender::fast_lane`].  Deliberately neither `Clone` nor `Sync`: the
/// unique-producer contract of the underlying [`Spsc`] ring is enforced by
/// this type's shape, not by runtime checks.  `Send` is fine — moving the
/// handle moves the producer role with it.
pub struct LaneSender<T> {
    /// Keeps the channel (and thus the lane node) alive, provides the MPMC
    /// fallback path, and counts this handle as a sender for disconnect
    /// semantics.
    sender: Sender<T>,
    lane: *mut LaneNode<T>,
    /// `Cell` is `Send + !Sync`, which is exactly the contract we want for
    /// the handle itself.
    _single_producer: PhantomData<std::cell::Cell<()>>,
}

impl<T> fmt::Debug for LaneSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("LaneSender { .. }")
    }
}

// SAFETY: the raw lane pointer targets a node owned by the channel's
// `Shared`, which the embedded `Sender`'s `Arc` keeps alive; all access to
// the node goes through the Spsc stamp protocol.  `PhantomData<Cell<()>>`
// keeps the type `!Sync` so the unique-producer contract survives the move.
unsafe impl<T: Send> Send for LaneSender<T> {}

impl<T> LaneSender<T> {
    /// Send on the fast lane, falling back to the shared MPMC queue when the
    /// ring is full.  Returns `Ok(true)` when the message took the lane,
    /// `Ok(false)` when it fell back.
    pub fn send(&self, value: T) -> Result<bool, SendError<T>> {
        let sh = &*self.sender.shared;
        if sh.disconnected_receivers() {
            return Err(SendError(value));
        }
        // SAFETY: the node outlives this handle (see the `Send` impl note).
        let queue = unsafe { &(*self.lane).queue };
        // SAFETY: `LaneSender` is `!Clone + !Sync`, so this handle is the
        // ring's unique producer — the contract `Spsc::try_push` requires.
        match unsafe { queue.try_push(value) } {
            Ok(()) => {
                sh.not_empty.notify(false);
                Ok(true)
            }
            Err(v) => self.sender.send(v).map(|()| false),
        }
    }
}

impl<T> Sender<T> {
    /// Attach a dedicated single-producer fast lane of `capacity` slots to
    /// this channel.  The lane's storage lives until the channel itself is
    /// dropped, so create one lane per long-lived producer, not per message
    /// burst.
    pub fn fast_lane(&self, capacity: usize) -> LaneSender<T> {
        let node = Box::into_raw(Box::new(LaneNode {
            queue: Spsc::new(capacity),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.shared.lanes.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is unpublished until the CAS below succeeds, so
            // we are its only writer here.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            // Release publishes the node's initialized contents to receivers
            // that Acquire-load the list head.
            match self.shared.lanes.compare_exchange(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        LaneSender {
            sender: self.clone(),
            lane: node,
            _single_producer: PhantomData,
        }
    }

    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let sh = &*self.shared;
        let mut value = value;
        loop {
            if sh.disconnected_receivers() {
                return Err(SendError(value));
            }
            match sh.try_push(value) {
                Ok(()) => {
                    sh.not_empty.notify(false);
                    return Ok(());
                }
                Err(v) => value = v,
            }
            // Bounded channel full: spin briefly, then park until a consumer
            // frees a slot or the last receiver hangs up.
            let mut backoff = Backoff::new();
            loop {
                if sh.disconnected_receivers() {
                    return Err(SendError(value));
                }
                match sh.try_push(value) {
                    Ok(()) => {
                        sh.not_empty.notify(false);
                        return Ok(());
                    }
                    Err(v) => value = v,
                }
                metrics::enqueue_spin();
                if !backoff.snooze() {
                    break;
                }
            }
            sh.not_full
                .wait_until(|| !sh.is_full() || sh.disconnected_receivers());
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let sh = &*self.shared;
        loop {
            if let Some(v) = sh.try_pop() {
                sh.after_pop();
                return Ok(v);
            }
            if sh.disconnected_senders() {
                // Messages pushed before the last sender dropped are still
                // delivered: re-check once after observing the disconnect.
                return match sh.try_pop() {
                    Some(v) => {
                        sh.after_pop();
                        Ok(v)
                    }
                    None => Err(RecvError),
                };
            }
            // Spin briefly, then park until a message arrives or the last
            // sender hangs up.
            let mut backoff = Backoff::new();
            loop {
                if let Some(v) = sh.try_pop() {
                    sh.after_pop();
                    return Ok(v);
                }
                if sh.disconnected_senders() {
                    break;
                }
                if !backoff.snooze() {
                    break;
                }
            }
            if !sh.disconnected_senders() {
                sh.not_empty
                    .wait_until(|| !sh.is_empty() || sh.disconnected_senders());
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let sh = &*self.shared;
        if let Some(v) = sh.try_pop() {
            sh.after_pop();
            return Ok(v);
        }
        if sh.disconnected_senders() {
            match sh.try_pop() {
                Some(v) => {
                    sh.after_pop();
                    Ok(v)
                }
                None => Err(TryRecvError::Disconnected),
            }
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let sh = &*self.shared;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = sh.try_pop() {
                sh.after_pop();
                return Ok(v);
            }
            if sh.disconnected_senders() {
                return match sh.try_pop() {
                    Some(v) => {
                        sh.after_pop();
                        Ok(v)
                    }
                    None => Err(RecvTimeoutError::Disconnected),
                };
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let mut backoff = Backoff::new();
            loop {
                if let Some(v) = sh.try_pop() {
                    sh.after_pop();
                    return Ok(v);
                }
                if sh.disconnected_senders() || Instant::now() >= deadline {
                    break;
                }
                if !backoff.snooze() {
                    break;
                }
            }
            if !sh.disconnected_senders() && Instant::now() < deadline {
                sh.not_empty
                    .wait_deadline(|| !sh.is_empty() || sh.disconnected_senders(), deadline);
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Pop one message from the channel's fast lanes ([`Sender::fast_lane`]),
    /// bypassing the main queue.  Lane consumption is CAS-claimed, so a
    /// cloned receiver is safe — but the intended shape is one draining
    /// receiver per channel.
    pub fn try_recv_lane(&self) -> Option<T> {
        self.shared.try_pop_lane()
    }

    /// Whether any fast lane currently holds a message.
    pub fn lane_ready(&self) -> bool {
        self.shared.lane_ready()
    }

    /// Block until the main queue or a fast lane has a message, or every
    /// sender has disconnected.  Pure wait — the caller pops via
    /// [`Receiver::try_recv`] / [`Receiver::try_recv_lane`] afterwards (a
    /// concurrent consumer may still win the race to the message).
    pub fn wait_any(&self) {
        let sh = &*self.shared;
        let mut backoff = Backoff::new();
        loop {
            if !sh.is_empty() || sh.lane_ready() || sh.disconnected_senders() {
                return;
            }
            if !backoff.snooze() {
                break;
            }
        }
        sh.not_empty
            .wait_until(|| !sh.is_empty() || sh.lane_ready() || sh.disconnected_senders());
    }
}

fn with_flavor<T>(flavor: Flavor<T>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        flavor,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Gate::new(),
        not_full: Gate::new(),
        lanes: AtomicPtr::new(std::ptr::null_mut()),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// An unbounded MPMC channel (lock-free segmented queue).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_flavor(Flavor::Unbounded(Unbounded::new()))
}

/// A bounded MPMC channel (lock-free Vyukov ring).  Capacity 0 (a rendezvous
/// channel in real crossbeam) is approximated with capacity 1; the workspace
/// never creates zero-capacity channels.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_flavor(Flavor::Bounded(Bounded::new(cap.max(1))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn messages_sent_before_disconnect_are_delivered() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).map_err(|_| ()));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn mpmc_cloning_works_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u64> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        tx.send(10).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Ok(10));
        assert!(rx.is_empty());
    }

    #[test]
    fn fast_lane_delivers_and_falls_back_when_full() {
        let (tx, rx) = unbounded::<u32>();
        let lane = tx.fast_lane(2);
        assert!(lane.send(1).unwrap());
        assert!(lane.send(2).unwrap());
        // Ring full: the third message takes the MPMC fallback.
        assert!(!lane.send(3).unwrap());
        assert!(rx.lane_ready());
        assert_eq!(rx.try_recv_lane(), Some(1));
        assert_eq!(rx.try_recv_lane(), Some(2));
        assert_eq!(rx.try_recv_lane(), None);
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn lane_message_before_control_drains_first() {
        // The engine's quiesce shape: an action on the lane, then a control
        // message on the main queue; a receiver that pops the control message
        // must find the action on a single lane drain pass.
        let (tx, rx) = unbounded::<u32>();
        let lane = tx.fast_lane(4);
        lane.send(10).unwrap();
        tx.send(99).unwrap();
        assert_eq!(rx.try_recv(), Ok(99));
        assert_eq!(rx.try_recv_lane(), Some(10));
    }

    #[test]
    fn wait_any_sees_lane_sends_and_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let lane = tx.fast_lane(1);
        let h = thread::spawn(move || {
            lane.send(5).unwrap();
            // `lane` (and the embedded sender clone) drop here…
        });
        loop {
            rx.wait_any();
            if let Some(v) = rx.try_recv_lane() {
                assert_eq!(v, 5);
                break;
            }
        }
        h.join().unwrap();
        drop(tx);
        // All senders gone: wait_any must not park forever.
        rx.wait_any();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn lane_send_errors_when_receivers_gone() {
        let (tx, rx) = unbounded::<u32>();
        let lane = tx.fast_lane(1);
        drop(rx);
        assert!(lane.send(1).is_err());
    }

    #[test]
    fn lane_pending_values_dropped_with_channel() {
        // Values parked in a lane when the channel dies must still be freed
        // (leak-checked under miri/asan).
        let (tx, rx) = unbounded::<Vec<u32>>();
        let lane = tx.fast_lane(4);
        lane.send(vec![1, 2, 3]).unwrap();
        lane.send(vec![4, 5, 6]).unwrap();
        drop((tx, rx, lane));
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock timeouts are meaningless under miri")]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(3));
        h.join().unwrap();
    }
}
