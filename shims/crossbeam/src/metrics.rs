//! Process-global message-cost counters for the shim's channels.
//!
//! The counters cover only the *slow paths* — CAS retries, parks and
//! condvar notifications — so the uncontended hot path stays free of shared
//! counter traffic.  `plp-core` folds deltas of these counters into its
//! per-engine `MsgStats` (see `Database::sync_channel_metrics`), and the
//! message-cost benchmark reads them directly.
//!
//! This module is an *extension* over the real crossbeam's API: it exists
//! only in the shim.  The engine confines its use to one function so the
//! real crate can still be swapped in (see the crate docs).

use std::sync::atomic::{AtomicU64, Ordering};

static ENQUEUE_SPINS: AtomicU64 = AtomicU64::new(0);
static DEQUEUE_SPINS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static WAKEUPS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn enqueue_spin() {
    ENQUEUE_SPINS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn dequeue_spin() {
    DEQUEUE_SPINS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn park() {
    PARKS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn wakeup() {
    WAKEUPS.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time copy of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Producer-side retry rounds: failed ticket CASes and waits for a block
    /// install or a full queue.
    pub enqueue_spins: u64,
    /// Consumer-side retry rounds: failed ticket CASes and waits for an
    /// in-flight write or a block install.
    pub dequeue_spins: u64,
    /// Times a thread gave up spinning and blocked on the channel's condvar.
    pub parks: u64,
    /// Condvar notifications actually issued (skipped when no one sleeps).
    pub wakeups: u64,
}

/// Read the global counters.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        enqueue_spins: ENQUEUE_SPINS.load(Ordering::Relaxed),
        dequeue_spins: DEQUEUE_SPINS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        wakeups: WAKEUPS.load(Ordering::Relaxed),
    }
}

/// Zero the global counters (benchmark harness use only; concurrent channel
/// users simply see their activity start from zero again).
pub fn reset() {
    ENQUEUE_SPINS.store(0, Ordering::Relaxed);
    DEQUEUE_SPINS.store(0, Ordering::Relaxed);
    PARKS.store(0, Ordering::Relaxed);
    WAKEUPS.store(0, Ordering::Relaxed);
}
