//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset of `crossbeam::channel` the workspace uses — MPMC
//! `bounded`/`unbounded` channels whose `Sender` and `Receiver` are both
//! `Clone + Send + Sync`, with `send`, `recv`, `try_recv`, `recv_timeout`,
//! `len`/`is_empty` and crossbeam's disconnect semantics.  Swap the
//! workspace dependency back to the real crate when network access is
//! available; call sites need no changes.
//!
//! # Implementation
//!
//! The worker request/reply exchange in `plp-core` is the engine's hot path
//! (the "Message passing" component of the paper's Figure 1), so since PR 5
//! the channels are **lock-free on the hot path**:
//!
//! * `bounded(n)` is a Vyukov-style array queue ([`queue`] has the
//!   algorithm and the memory-ordering argument);
//! * `unbounded()` is a segmented block-linked queue in the style of
//!   crossbeam-channel's "list" flavor, with cooperative block reclamation;
//! * blocking is layered on top: a bounded spin-then-yield phase, then a
//!   park on a mutex+condvar gate that is touched only while a thread
//!   actually sleeps ([`channel`] documents the lost-wakeup argument and
//!   the wake-one vs wake-all policy).
//!
//! # Extensions over the real crate
//!
//! Two additive modules exist only in the shim:
//!
//! * [`channel::mutex_baseline`] — the previous mutex+condvar
//!   implementation, kept as the measurement baseline for the message-cost
//!   experiment and as a correctness oracle for the semantics tests;
//! * [`metrics`] — process-global slow-path counters (enqueue/dequeue
//!   spins, parks, wakeups).
//!
//! When swapping in the real crossbeam, the workspace code that touches
//! these extensions is confined to `plp_core::Database::sync_channel_metrics`
//! and the `fig_msgcost` benchmark; everything else uses the real crate's
//! API surface.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod channel;
pub mod metrics;
#[cfg(all(test, any(plp_loom, feature = "loom-model")))]
mod model_tests;
mod primitives;
mod queue;
