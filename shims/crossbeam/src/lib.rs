//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset of `crossbeam::channel` the workspace uses: MPMC
//! `bounded`/`unbounded` channels whose `Sender` and `Receiver` are both
//! `Clone + Send + Sync`. Implemented with a mutex-guarded `VecDeque` and two
//! condvars — correct and plenty fast for the message rates the engine's
//! partition workers see. Swap the workspace dependency back to the real
//! crate when network access is available.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
        r.unwrap_or_else(PoisonError::into_inner)
    }

    /// Error returned by [`Sender::send`] when every receiver has hung up.
    /// The unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.pad("receiving on an empty channel"),
                TryRecvError::Disconnected => f.pad("receiving on a disconnected channel"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.pad("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => f.pad("receiving on a disconnected channel"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            unpoison(self.inner.state.lock()).senders += 1;
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            unpoison(self.inner.state.lock()).receivers += 1;
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = unpoison(self.inner.state.lock());
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = unpoison(self.inner.state.lock());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = unpoison(self.inner.state.lock());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = unpoison(self.inner.not_full.wait(st));
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = unpoison(self.inner.state.lock());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = unpoison(self.inner.not_empty.wait(st));
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = unpoison(self.inner.state.lock());
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = unpoison(self.inner.state.lock());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = unpoison(self.inner.not_empty.wait_timeout(st, remaining));
                st = g;
            }
        }

        pub fn is_empty(&self) -> bool {
            unpoison(self.inner.state.lock()).queue.is_empty()
        }

        pub fn len(&self) -> usize {
            unpoison(self.inner.state.lock()).queue.len()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded MPMC channel. Capacity 0 (a rendezvous channel in real
    /// crossbeam) is approximated with capacity 1; the workspace never
    /// creates zero-capacity channels.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || tx.send(2).map_err(|_| ()));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            h.join().unwrap().unwrap();
        }

        #[test]
        fn mpmc_cloning_works_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<u64> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
