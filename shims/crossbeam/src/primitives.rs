//! Concurrency-primitive facade: `std` in normal builds, the `loom`-subset
//! model checker under `--cfg plp_loom` or the `loom-model` feature.
//!
//! Everything in `queue` and `channel` that the model checker needs to
//! observe — atomics, fences, mutexes, condvars, yields — is imported from
//! here instead of `std`, so the *same source* runs under std normally and
//! under systematic interleaving exploration in the model-check lane.  In
//! normal builds this module is plain re-exports of the std items: zero
//! cost, same types, no behavior change (the `fig_msgcost` perf gate pins
//! that).
//!
//! The loom shim's types delegate to `std` whenever no model execution is
//! active, so even with the feature enabled the ordinary test suite behaves
//! identically; only code inside a `loom::model(..)` closure is checked.

#[cfg(not(any(plp_loom, feature = "loom-model")))]
mod imp {
    pub use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
    pub use std::sync::{Arc, Condvar, Mutex};
    pub use std::thread::yield_now;

    /// Busy-wait `rounds` iterations (a CAS-retry / in-flight-write pause).
    #[inline]
    pub fn spin_wait(rounds: u32) {
        for _ in 0..rounds {
            std::hint::spin_loop();
        }
    }
}

#[cfg(any(plp_loom, feature = "loom-model"))]
mod imp {
    pub use loom::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
    pub use loom::sync::{Arc, Condvar, Mutex};
    pub use loom::thread::yield_now;

    /// Under the model a busy-wait must be a *visible* yield: the scheduler
    /// deprioritizes yielded threads, so the peer whose progress the spin
    /// awaits actually runs (a hint-loop would monopolize the deterministic
    /// schedule and read as a livelock).
    #[inline]
    pub fn spin_wait(_rounds: u32) {
        yield_now();
    }
}

pub(crate) use imp::*;
