//! Model-checked protocol tests (the `loom-model` lane).
//!
//! Each test runs a small instance of one lock-free protocol under the loom
//! shim's bounded-preemption DFS, exploring every interleaving and every
//! weak-memory visibility choice within the bounds.  These pin the exact
//! races the comment proofs in [`crate::queue`] and [`crate::channel`]
//! argue about; `docs/concurrency.md` maps protocol → invariant → test.
//!
//! Run with `cargo test -p crossbeam --features loom-model model_` (or
//! `RUSTFLAGS=--cfg plp_loom`).  Under the model cfg, `BLOCK_CAP` is 3 so
//! the segmented queue's block-boundary and reclamation paths are reachable
//! within a few operations.

use loom::sync::Arc;
use loom::thread;

use crate::channel;
use crate::queue::{Bounded, Spsc, Unbounded, BLOCK_CAP};

/// The repartition controller's quiesce handshake shape: request over one
/// `bounded(1)` channel, ack back over another.  The PR 5 livelock (a
/// `bounded(1)` consumer and producer each waiting for the other's lap
/// marker) lived exactly here.
#[test]
fn model_bounded1_quiesce_handshake() {
    loom::model(|| {
        let (req_tx, req_rx) = channel::bounded::<u32>(1);
        let (ack_tx, ack_rx) = channel::bounded::<u32>(1);
        let worker = thread::spawn(move || {
            let r = req_rx.recv().expect("request arrives");
            ack_tx.send(r + 1).expect("ack accepted");
        });
        req_tx.send(7).expect("request accepted");
        assert_eq!(ack_rx.recv(), Ok(8));
        worker.join().unwrap();
    });
}

/// Doubled-position lap encoding on a capacity-1 Vyukov queue: two
/// producers contend for the same slot across consecutive laps; no value
/// may be lost, duplicated, or reordered within a producer.
#[test]
fn model_bounded1_lap_encoding_two_producers() {
    loom::model(|| {
        let q = Arc::new(Bounded::new(1));
        let producers: Vec<_> = [10u32, 20]
            .into_iter()
            .map(|v| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut v = v;
                    if let Err(back) = q.try_push(v) {
                        // Full: the other producer won the slot; retry until
                        // the consumer frees it (next lap's marker).
                        v = back;
                        while let Err(back) = q.try_push(v) {
                            v = back;
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 2 {
            match q.try_pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, [10, 20]);
        assert!(q.try_pop().is_none());
    });
}

/// Segmented-queue block reclamation: two consumers drain a run of values
/// that crosses a block boundary, so the WRITE/READ/DESTROY handoff (the
/// destruction baton between a reader that finished last and a reader still
/// in an earlier slot) is exercised under every interleaving.
#[test]
fn model_unbounded_block_reclamation() {
    loom::model(|| {
        let q = Arc::new(Unbounded::new());
        // Crosses the first block (BLOCK_CAP = 3 under the model cfg).
        let n = (BLOCK_CAP + 1) as u32;
        for v in 0..n {
            q.push(v);
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..2 {
                        loop {
                            if let Some(v) = q.try_pop() {
                                got.push(v);
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert!(q.is_empty());
    });
}

/// Gate sleeper-count Dekker pairing: a receiver that parks on an empty
/// channel must be woken by a concurrent send.  A lost wakeup (the sender's
/// sleeper-count load reordered before the receiver's registration)
/// manifests as a model deadlock.
#[test]
fn model_gate_send_wakes_parked_receiver() {
    loom::model(|| {
        let (tx, rx) = channel::unbounded::<u32>();
        let sender = thread::spawn(move || {
            tx.send(42).expect("receiver alive");
        });
        assert_eq!(rx.recv(), Ok(42));
        sender.join().unwrap();
    });
}

/// Disconnect-wakes-all: dropping the last sender must wake every parked
/// receiver, under every ordering of the drop and the two parks.
#[test]
fn model_disconnect_wakes_all_receivers() {
    loom::model(|| {
        let (tx, rx) = channel::unbounded::<u32>();
        let receivers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.recv())
            })
            .collect();
        drop(rx);
        drop(tx);
        for r in receivers {
            assert_eq!(r.join().unwrap(), Err(channel::RecvError));
        }
    });
}

/// SPSC publication: the producer's Release stamp store must make the value
/// write visible to the consumer's Acquire load, across a lap boundary
/// (capacity 1 forces slot reuse on the second push).  A missing
/// Release/Acquire pair manifests as an uninitialized or stale read.
#[test]
fn model_spsc_publication() {
    loom::model(|| {
        let q = Arc::new(Spsc::new(1));
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                for v in [11u32, 22] {
                    let mut v = v;
                    // SAFETY: this thread is the ring's unique producer.
                    while let Err(back) = unsafe { q.try_push(v) } {
                        v = back;
                        thread::yield_now();
                    }
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            match q.try_pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        // Single producer: FIFO, no loss, no duplication.
        assert_eq!(got, [11, 22]);
        assert!(q.try_pop().is_none());
    });
}

/// Lane-side lost-wakeup freedom: a receiver parked in `wait_any` on an
/// empty channel must be woken by a concurrent *lane* send (the gate's
/// Dekker pairing extended with the `SeqCst` fence in `Shared::lane_ready`).
/// A lost wakeup manifests as a model deadlock.
#[test]
fn model_lane_send_wakes_parked_receiver() {
    loom::model(|| {
        let (tx, rx) = channel::unbounded::<u32>();
        let lane = tx.fast_lane(1);
        let sender = thread::spawn(move || {
            assert!(lane.send(42).expect("receiver alive"), "lane was empty");
        });
        loop {
            rx.wait_any();
            if let Some(v) = rx.try_recv_lane() {
                assert_eq!(v, 42);
                break;
            }
            thread::yield_now();
        }
        sender.join().unwrap();
    });
}

/// Lane-vs-control ordering handshake: a message pushed onto a fast lane
/// *before* a main-queue (control) message from the same producer must be
/// visible to a receiver that drains lanes after popping the control
/// message.  This is the invariant the engine's quiesce drain relies on when
/// actions ride lanes while Quiesce/Shutdown stay on the MPMC queue.
#[test]
fn model_lane_vs_control_ordering() {
    loom::model(|| {
        let (tx, rx) = channel::unbounded::<u32>();
        let lane = tx.fast_lane(1);
        let sender = thread::spawn(move || {
            assert!(lane.send(1).is_ok()); // "action" on the lane
            tx.send(2).expect("receiver alive"); // "control" on the main queue
        });
        // Receive the control message from the main queue first…
        let control = loop {
            match rx.try_recv() {
                Ok(v) => break v,
                Err(_) => thread::yield_now(),
            }
        };
        assert_eq!(control, 2);
        // …then the lane message must already be there: no yield-loop — a
        // single drain pass has to find it.
        assert_eq!(rx.try_recv_lane(), Some(1));
        sender.join().unwrap();
    });
}

/// Bounded backpressure: a producer that finds the queue full parks and must
/// be woken when the consumer frees the slot (the not-full side of the
/// Gate, paired with the same Dekker argument as the not-empty side).
#[test]
fn model_bounded1_full_send_wakes() {
    loom::model(|| {
        let (tx, rx) = channel::bounded::<u32>(1);
        let producer = thread::spawn(move || {
            tx.send(1).expect("receiver alive");
            tx.send(2).expect("receiver alive"); // blocks while slot is full
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        producer.join().unwrap();
    });
}
