//! The previous mutex+condvar channel, kept as a measurement baseline.
//!
//! This is the implementation the engine's worker hot path used before the
//! lock-free queues landed: a mutex-guarded `VecDeque` with two condvars, so
//! every send and every recv pays a lock acquisition (two when the channel
//! toggles between empty and non-empty) plus a condvar wake.  The
//! message-cost experiment (`fig_msgcost`) runs both implementations side by
//! side to reproduce the paper's claim that message passing dominates the
//! remaining per-action cost; the semantics test suite also runs against it
//! as a correctness oracle.
//!
//! Audit note from the port: message arrival intentionally uses
//! `notify_one` (one message can satisfy one waiter — both here and in the
//! lock-free layer), while disconnects use `notify_all` on the opposite
//! gate; every blocked peer must observe a hangup.  Both properties are
//! pinned by `tests/mpmc_semantics.rs` for both implementations.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

pub use super::{RecvError, RecvTimeoutError, SendError, TryRecvError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        unpoison(self.inner.state.lock()).senders += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        unpoison(self.inner.state.lock()).receivers += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = unpoison(self.inner.state.lock());
        st.senders -= 1;
        if st.senders == 0 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = unpoison(self.inner.state.lock());
        st.receivers -= 1;
        if st.receivers == 0 {
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = unpoison(self.inner.state.lock());
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = unpoison(self.inner.not_full.wait(st));
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = unpoison(self.inner.state.lock());
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = unpoison(self.inner.not_empty.wait(st));
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = unpoison(self.inner.state.lock());
        if let Some(v) = st.queue.pop_front() {
            self.inner.not_full.notify_one();
            Ok(v)
        } else if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = unpoison(self.inner.state.lock());
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = unpoison(self.inner.not_empty.wait_timeout(st, remaining));
            st = g;
        }
    }

    pub fn is_empty(&self) -> bool {
        unpoison(self.inner.state.lock()).queue.is_empty()
    }

    pub fn len(&self) -> usize {
        unpoison(self.inner.state.lock()).queue.len()
    }
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// An unbounded mutex+condvar MPMC channel (the measurement baseline).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A bounded mutex+condvar MPMC channel (the measurement baseline).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}
