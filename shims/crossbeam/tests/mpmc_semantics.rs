//! Channel semantics pinned for BOTH implementations: the lock-free queues
//! (`crossbeam::channel`) and the retained mutex+condvar baseline
//! (`crossbeam::channel::mutex_baseline`).  The baseline doubles as a
//! correctness oracle: any behavioral divergence fails here, not in the
//! engine.
//!
//! Covered: multi-producer/multi-consumer no-loss/no-duplication, per-sender
//! FIFO, disconnects waking *all* blocked peers (both directions), and
//! `recv_timeout` behaviour under spurious wakeups (losing a wakeup race
//! must not turn into an early timeout or a hang).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

macro_rules! channel_semantics {
    ($module:ident, $chan:path) => {
        mod $module {
            use super::*;
            use $chan as chan;

            #[test]
            fn mpmc_unbounded_no_loss_no_duplication() {
                mpmc_transfer(chan::unbounded::<u64>(), 4, 3, 5_000);
            }

            #[test]
            fn mpmc_bounded_no_loss_no_duplication() {
                // A tiny capacity forces constant full/empty transitions —
                // the hardest case for the wakeup protocol.
                mpmc_transfer(chan::bounded::<u64>(4), 4, 3, 3_000);
            }

            fn mpmc_transfer(
                (tx, rx): (chan::Sender<u64>, chan::Receiver<u64>),
                producers: u64,
                consumers: usize,
                per_producer: u64,
            ) {
                let received = Arc::new(AtomicU64::new(0));
                let total = producers * per_producer;
                let mut counts: HashMap<u64, u64> = HashMap::new();
                std::thread::scope(|scope| {
                    let mut consumer_handles = Vec::new();
                    for _ in 0..consumers {
                        let rx = rx.clone();
                        let received = received.clone();
                        consumer_handles.push(scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                                received.fetch_add(1, Ordering::Relaxed);
                            }
                            got
                        }));
                    }
                    drop(rx);
                    for p in 0..producers {
                        let tx = tx.clone();
                        scope.spawn(move || {
                            for i in 0..per_producer {
                                tx.send(p * per_producer + i).unwrap();
                            }
                        });
                    }
                    drop(tx);
                    for handle in consumer_handles {
                        for v in handle.join().unwrap() {
                            *counts.entry(v).or_default() += 1;
                        }
                    }
                });
                assert_eq!(received.load(Ordering::Relaxed), total, "message lost");
                assert_eq!(counts.len() as u64, total, "message missing");
                assert!(
                    counts.values().all(|&c| c == 1),
                    "message duplicated: {:?}",
                    counts
                        .iter()
                        .filter(|(_, &c)| c != 1)
                        .take(5)
                        .collect::<Vec<_>>()
                );
            }

            #[test]
            fn per_sender_fifo_with_single_consumer() {
                let (tx, rx) = chan::unbounded::<(u64, u64)>();
                let producers = 4u64;
                let per_producer = 5_000u64;
                std::thread::scope(|scope| {
                    for p in 0..producers {
                        let tx = tx.clone();
                        scope.spawn(move || {
                            for i in 0..per_producer {
                                tx.send((p, i)).unwrap();
                            }
                        });
                    }
                    drop(tx);
                    let mut next: HashMap<u64, u64> = HashMap::new();
                    while let Ok((p, i)) = rx.recv() {
                        let expected = next.entry(p).or_insert(0);
                        assert_eq!(i, *expected, "producer {p} reordered");
                        *expected += 1;
                    }
                    for p in 0..producers {
                        assert_eq!(next[&p], per_producer);
                    }
                });
            }

            #[test]
            fn control_messages_stay_fifo_behind_work() {
                // The engine's quiesce/shutdown messages ride the same queue
                // as actions and must never overtake them.
                let (tx, rx) = chan::unbounded::<&'static str>();
                for _ in 0..100 {
                    tx.send("work").unwrap();
                }
                tx.send("control").unwrap();
                let mut seen_work = 0;
                loop {
                    match rx.recv().unwrap() {
                        "work" => seen_work += 1,
                        "control" => break,
                        _ => unreachable!(),
                    }
                }
                assert_eq!(seen_work, 100, "control overtook queued work");
            }

            #[test]
            fn dropping_last_sender_wakes_all_blocked_receivers() {
                let (tx, rx) = chan::unbounded::<u64>();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..3)
                        .map(|_| {
                            let rx = rx.clone();
                            scope.spawn(move || rx.recv())
                        })
                        .collect();
                    // Let all three reach the blocking path.
                    std::thread::sleep(Duration::from_millis(50));
                    drop(tx);
                    for h in handles {
                        assert!(h.join().unwrap().is_err(), "receiver missed the disconnect");
                    }
                });
            }

            #[test]
            fn dropping_last_receiver_wakes_all_blocked_senders() {
                let (tx, rx) = chan::bounded::<u64>(1);
                tx.send(0).unwrap();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..3)
                        .map(|i| {
                            let tx = tx.clone();
                            scope.spawn(move || tx.send(i))
                        })
                        .collect();
                    std::thread::sleep(Duration::from_millis(50));
                    drop(rx);
                    for h in handles {
                        assert!(h.join().unwrap().is_err(), "sender missed the disconnect");
                    }
                });
            }

            #[test]
            fn recv_timeout_survives_spurious_wakeups() {
                // Four receivers wait on one channel; a single message wakes
                // (at least) one of them.  The losers' wakeups are exactly
                // the spurious case: they must go back to waiting and time
                // out no earlier than their deadline, without hanging.
                let (tx, rx) = chan::unbounded::<u64>();
                let timeout = Duration::from_millis(300);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..4)
                        .map(|_| {
                            let rx = rx.clone();
                            scope.spawn(move || {
                                let start = Instant::now();
                                (rx.recv_timeout(timeout), start.elapsed())
                            })
                        })
                        .collect();
                    std::thread::sleep(Duration::from_millis(50));
                    tx.send(7).unwrap();
                    let mut winners = 0;
                    let mut losers = 0;
                    for h in handles {
                        match h.join().unwrap() {
                            (Ok(7), _) => winners += 1,
                            (Ok(other), _) => panic!("impossible message {other}"),
                            (Err(_), elapsed) => {
                                losers += 1;
                                assert!(
                                    elapsed >= timeout,
                                    "timed out early after a spurious wakeup: {elapsed:?}"
                                );
                            }
                        }
                    }
                    assert_eq!(winners, 1);
                    assert_eq!(losers, 3);
                });
            }

            #[test]
            fn recv_timeout_delivers_late_message_within_deadline() {
                let (tx, rx) = chan::unbounded::<u64>();
                let h = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(40));
                    tx.send(1).unwrap();
                });
                assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(1));
                h.join().unwrap();
            }
        }
    };
}

channel_semantics!(lockfree, crossbeam::channel);
channel_semantics!(mutex_baseline, crossbeam::channel::mutex_baseline);
