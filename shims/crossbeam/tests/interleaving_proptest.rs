//! Property test: random interleaved send/recv/clone/drop sequences applied
//! to the lock-free channel, the mutex+condvar baseline and a `VecDeque`
//! model simultaneously — all three must agree on every observable outcome
//! (delivered values, `Empty` vs `Disconnected`, send failures).

use std::collections::VecDeque;

use crossbeam::channel as lockfree;
use crossbeam::channel::mutex_baseline as baseline;
use proptest::prelude::*;

/// One scripted operation, decoded from a byte.
#[derive(Debug, Clone, Copy)]
enum Op {
    Send(u64),
    TryRecv,
    CloneSender,
    DropSender,
}

fn decode(byte: u8, seq: u64) -> Op {
    match byte % 8 {
        0..=2 => Op::Send(seq),
        3..=5 => Op::TryRecv,
        6 => Op::CloneSender,
        _ => Op::DropSender,
    }
}

/// A channel implementation under test, erased to the operations the script
/// uses.
trait Channel {
    fn send(&mut self, v: u64) -> bool;
    /// `Ok(Some)` = value, `Ok(None)` = empty, `Err(())` = disconnected.
    fn try_recv(&mut self) -> Result<Option<u64>, ()>;
    fn clone_sender(&mut self);
    fn drop_sender(&mut self);
    fn senders(&self) -> usize;
}

struct Lockfree {
    senders: Vec<lockfree::Sender<u64>>,
    rx: lockfree::Receiver<u64>,
}

impl Channel for Lockfree {
    fn send(&mut self, v: u64) -> bool {
        match self.senders.first() {
            Some(tx) => tx.send(v).is_ok(),
            None => false,
        }
    }
    fn try_recv(&mut self) -> Result<Option<u64>, ()> {
        match self.rx.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(lockfree::TryRecvError::Empty) => Ok(None),
            Err(lockfree::TryRecvError::Disconnected) => Err(()),
        }
    }
    fn clone_sender(&mut self) {
        if let Some(tx) = self.senders.first() {
            let clone = tx.clone();
            self.senders.push(clone);
        }
    }
    fn drop_sender(&mut self) {
        self.senders.pop();
    }
    fn senders(&self) -> usize {
        self.senders.len()
    }
}

struct Baseline {
    senders: Vec<baseline::Sender<u64>>,
    rx: baseline::Receiver<u64>,
}

impl Channel for Baseline {
    fn send(&mut self, v: u64) -> bool {
        match self.senders.first() {
            Some(tx) => tx.send(v).is_ok(),
            None => false,
        }
    }
    fn try_recv(&mut self) -> Result<Option<u64>, ()> {
        match self.rx.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(baseline::TryRecvError::Empty) => Ok(None),
            Err(baseline::TryRecvError::Disconnected) => Err(()),
        }
    }
    fn clone_sender(&mut self) {
        if let Some(tx) = self.senders.first() {
            let clone = tx.clone();
            self.senders.push(clone);
        }
    }
    fn drop_sender(&mut self) {
        self.senders.pop();
    }
    fn senders(&self) -> usize {
        self.senders.len()
    }
}

fn run_script(ops: &[u8]) {
    let (ltx, lrx) = lockfree::unbounded::<u64>();
    let (btx, brx) = baseline::unbounded::<u64>();
    let mut lf = Lockfree {
        senders: vec![ltx],
        rx: lrx,
    };
    let mut bl = Baseline {
        senders: vec![btx],
        rx: brx,
    };
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut model_senders = 1usize;

    for (i, &byte) in ops.iter().enumerate() {
        match decode(byte, i as u64) {
            Op::Send(v) => {
                let sent_lf = lf.send(v);
                let sent_bl = bl.send(v);
                let sent_model = model_senders > 0;
                assert_eq!(sent_lf, sent_model, "send outcome diverged at op {i}");
                assert_eq!(sent_bl, sent_model, "baseline send diverged at op {i}");
                if sent_model {
                    model.push_back(v);
                }
            }
            Op::TryRecv => {
                let expected = if let Some(v) = model.pop_front() {
                    Ok(Some(v))
                } else if model_senders == 0 {
                    Err(())
                } else {
                    Ok(None)
                };
                assert_eq!(lf.try_recv(), expected, "lock-free recv diverged at op {i}");
                assert_eq!(bl.try_recv(), expected, "baseline recv diverged at op {i}");
            }
            Op::CloneSender => {
                lf.clone_sender();
                bl.clone_sender();
                if model_senders > 0 {
                    model_senders += 1;
                }
            }
            Op::DropSender => {
                lf.drop_sender();
                bl.drop_sender();
                model_senders = model_senders.saturating_sub(1);
            }
        }
        assert_eq!(lf.senders(), model_senders);
    }

    // Drain: everything the model still holds must come out, in order, from
    // both implementations, followed by Empty/Disconnected as appropriate.
    while let Some(v) = model.pop_front() {
        assert_eq!(lf.try_recv(), Ok(Some(v)), "drain diverged (lock-free)");
        assert_eq!(bl.try_recv(), Ok(Some(v)), "drain diverged (baseline)");
    }
    let tail = if model_senders == 0 {
        Err(())
    } else {
        Ok(None)
    };
    assert_eq!(lf.try_recv(), tail);
    assert_eq!(bl.try_recv(), tail);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleaved_send_recv_drop_matches_model(
        ops in prop::collection::vec(0u8..=255, 1..200)
    ) {
        run_script(&ops);
    }
}

#[test]
fn drop_heavy_script_reaches_disconnect() {
    // Deterministic regression: drop the only sender early, keep receiving.
    run_script(&[0, 0, 7, 3, 3, 3, 3]);
}
