//! Offline stand-in for the `rand` crate.
//!
//! Supplies the trait surface the workspace uses — `RngCore`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`) and `SeedableRng::seed_from_u64` — with
//! uniform sampling over integer ranges. Concrete generators live in the
//! `rand_chacha` shim. Swap the workspace dependency back to the real crate
//! when network access is available.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be produced by [`Rng::gen`] (the real crate's `Standard`
/// distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors the real crate's
/// trait of the same name so range literals unify with the usage context
/// during type inference (a single blanket `SampleRange` impl per range
/// shape, exactly like rand 0.8).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Modulo bias is negligible for the spans used here and this
                // is a test/bench shim, not a cryptographic sampler.
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (low as u64).wrapping_add(off) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (low as u64).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        Self::sample_half_open(low, high, rng)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators. The workspace only uses
/// `seed_from_u64`, so that is the whole trait.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, decent-quality generator (xorshift64*), used as the
    /// shim's standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0u8..4);
            assert!(v < 4);
            let v = rng.gen_range(5..=10usize);
            assert!((5..=10).contains(&v));
            let v = rng.gen_range(-5_000i64..5_000);
            assert!((-5_000..5_000).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
