//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, integer-range and
//! tuple strategies, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*` macros. Inputs are drawn from a ChaCha stream seeded from
//! the test's name, so runs are deterministic; there is no shrinking — a
//! failing case panics with the regular assertion message. Swap the
//! workspace dependency back to the real crate when network access is
//! available.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};

pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies by the `proptest!` macro.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand_chacha::ChaCha8Rng,
    }

    impl TestRng {
        /// Seed deterministically from the test's name so every test gets an
        /// independent but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: rand_chacha::ChaCha8Rng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random values of one type. The real crate separates
/// strategies from value trees to support shrinking; this shim only
/// generates.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A / 0)(A / 0, B / 1)(A / 0, B / 1, C / 2)(
    A / 0,
    B / 1,
    C / 2,
    D / 3
)(A / 0, B / 1, C / 2, D / 3, E / 4));

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::btree_set(element, len_range)`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            // The element domain may be smaller than the requested size, so
            // cap the attempts rather than looping forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(50) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// The test-definition macro. Each body runs `config.cases` times with
/// freshly generated inputs; assertion failures panic with the offending
/// case's values available via the assertion message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..4, 10u64..20), n in 1usize..8) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..100, 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_set_strategy_is_distinct(s in prop::collection::btree_set(0u64..1_000, 5..50)) {
            prop_assert!(s.len() < 50);
            prop_assert!(s.iter().all(|&x| x < 1_000));
        }
    }
}
