//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha keystream generator (8, 12 and 20 round
//! variants) over the `rand` shim's `RngCore`/`SeedableRng` traits. Seeding
//! via `seed_from_u64` expands the seed with SplitMix64, so streams are
//! deterministic per seed (though not bit-identical to the real
//! `rand_chacha`, which uses a different seed-expansion; the workspace only
//! relies on determinism and statistical quality, not exact streams).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// ChaCha state: 4 constant words, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    index: usize,
}

pub type ChaCha8Rng = ChaChaRng<8>;
pub type ChaCha12Rng = ChaChaRng<12>;
pub type ChaCha20Rng = ChaChaRng<20>;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter across words 12 and 13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter starts at zero; nonce words come from the seed stream too.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(12);
        assert_ne!(ChaCha8Rng::seed_from_u64(11).next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn chacha20_core_matches_rfc7539_block() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 000000090000004a00000000.
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, w) in state[4..12].iter_mut().enumerate() {
            let i = i as u32 * 4;
            *w = u32::from_le_bytes([i as u8, (i + 1) as u8, (i + 2) as u8, (i + 3) as u8]);
        }
        state[12] = 1;
        state[13] = 0x0900_0000;
        state[14] = 0x4a00_0000;
        state[15] = 0;
        let mut rng = ChaCha20Rng {
            state,
            block: [0; 16],
            index: 16,
        };
        // First output word of the RFC block function is 0xe4e7f110.
        assert_eq!(rng.next_u32(), 0xe4e7_f110);
    }
}
