//! Tests of the model checker itself: positive checks that correct
//! protocols pass, and seeded-bug negatives that MUST fail so the checker
//! cannot silently rot into a no-op (ISSUE 6 satellite).

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::{explore, Config};

fn unpoison<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Positive: correct programs explore cleanly
// ---------------------------------------------------------------------------

#[test]
fn concurrent_fetch_add_sums() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn mutex_provides_mutual_exclusion() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                loom::thread::spawn(move || {
                    let mut g = unpoison(m.lock());
                    let read = *g;
                    *g = read + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*unpoison(m.lock()), 2);
    });
}

#[test]
fn release_acquire_publication_is_clean() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // The Release/Acquire pair publishes the data store.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

#[test]
fn seqcst_store_buffering_is_forbidden() {
    // Dekker core: with SeqCst both threads cannot read 0 — the pattern the
    // crossbeam Gate relies on.
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r_main = x.load(Ordering::SeqCst);
        let r_child = t.join().unwrap();
        assert!(
            r_main == 1 || r_child == 1,
            "both critical-section guards saw 0"
        );
    });
}

#[test]
fn condvar_handoff_completes() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *unpoison(m.lock()) = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = unpoison(m.lock());
        while !*g {
            g = unpoison(cv.wait(g));
        }
        drop(g);
        t.join().unwrap();
    });
}

#[test]
fn park_unpark_token_is_not_lost() {
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let me = loom::thread::current();
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::Release);
            me.unpark();
        });
        // Even if the unpark lands before the park, the token makes park
        // return; the loop tolerates the no-token-yet case.
        while flag.load(Ordering::Acquire) == 0 {
            loom::thread::park();
        }
        t.join().unwrap();
    });
}

#[test]
fn spin_with_yield_converges() {
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        // Unbounded spin loop: only terminates under DFS because yielded
        // threads are descheduled until every peer has run.
        while flag.load(Ordering::Acquire) == 0 {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
}

#[test]
fn exploration_is_deterministic() {
    fn run() -> loom::Stats {
        explore(Config::default(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let n = n.clone();
                    loom::thread::spawn(move || {
                        n.fetch_add(i + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        })
        .expect("model is correct")
    }
    let a = run();
    let b = run();
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.choice_points, b.choice_points);
    assert!(a.iterations > 1, "exploration should branch on schedules");
}

// ---------------------------------------------------------------------------
// Seeded bugs: the checker MUST catch these
// ---------------------------------------------------------------------------

#[test]
fn seeded_relaxed_publish_bug_is_caught() {
    // Publication with a Relaxed flag store: a reader that observes the flag
    // may still read the pre-publication data value.
    let report = explore(Config::default(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // BUG: must be Release
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    })
    .expect_err("checker must catch the Relaxed publication");
    assert!(report.contains("failing execution"), "report: {report}");
}

#[test]
fn seeded_relaxed_store_buffering_is_caught() {
    // Dekker with Relaxed stores: both threads can read 0.
    let report = explore(Config::default(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed); // BUG: Dekker needs SeqCst
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r_main = x.load(Ordering::Relaxed);
        let r_child = t.join().unwrap();
        assert!(r_main == 1 || r_child == 1);
    })
    .expect_err("checker must catch Relaxed store buffering");
    assert!(report.contains("failing execution"), "report: {report}");
}

#[test]
fn seeded_lost_wakeup_is_caught() {
    // The flag is set and the condvar notified WITHOUT holding the mutex the
    // waiter checks under: the notify can land between the waiter's check
    // and its wait, and is then lost — a deadlock under the model.
    let report = explore(Config::default(), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (f2, p2) = (flag.clone(), pair.clone());
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
            p2.1.notify_one(); // BUG: not synchronized with the wait
        });
        let (m, cv) = &*pair;
        let mut g = unpoison(m.lock());
        while flag.load(Ordering::SeqCst) == 0 {
            g = unpoison(cv.wait(g));
        }
        drop(g);
        t.join().unwrap();
    })
    .expect_err("checker must catch the lost wakeup");
    assert!(report.contains("deadlock"), "report: {report}");
}

#[test]
fn seeded_livelock_hits_step_cap() {
    let cfg = Config {
        max_steps: 200,
        ..Config::default()
    };
    let report = explore(cfg, || {
        let stuck = Arc::new(AtomicUsize::new(0));
        // Nobody ever sets the flag: the spin loop never exits.
        while stuck.load(Ordering::Acquire) == 0 {
            loom::thread::yield_now();
        }
    })
    .expect_err("checker must flag the livelock");
    assert!(report.contains("livelock"), "report: {report}");
}

#[test]
fn seeded_double_lock_is_caught() {
    let report = explore(Config::default(), || {
        let m = Mutex::new(());
        let _g = unpoison(m.lock());
        let _g2 = m.lock(); // BUG: self-deadlock
    })
    .expect_err("checker must catch the relock");
    assert!(report.contains("relocked"), "report: {report}");
}
