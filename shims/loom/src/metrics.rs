//! Process-global model-run counters.
//!
//! `plp-instrument` folds these into its stats report so a `loom-model` test
//! run shows how much interleaving coverage it actually bought (an
//! exploration that silently collapses to one iteration would otherwise look
//! identical to an exhaustive one).  Extension over the real loom's API,
//! mirroring the pattern of `crossbeam::metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::rt::Stats;

static MODELS_RUN: AtomicU64 = AtomicU64::new(0);
static MODELS_FAILED: AtomicU64 = AtomicU64::new(0);
static ITERATIONS: AtomicU64 = AtomicU64::new(0);
static CHOICE_POINTS: AtomicU64 = AtomicU64::new(0);
static MAX_DEPTH: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_run(stats: &Stats, failed: bool) {
    MODELS_RUN.fetch_add(1, Ordering::Relaxed);
    if failed {
        MODELS_FAILED.fetch_add(1, Ordering::Relaxed);
    }
    ITERATIONS.fetch_add(stats.iterations, Ordering::Relaxed);
    CHOICE_POINTS.fetch_add(stats.choice_points, Ordering::Relaxed);
    MAX_DEPTH.fetch_max(stats.max_depth as u64, Ordering::Relaxed);
}

/// Point-in-time copy of the global model-run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Completed `model`/`explore` calls.
    pub models_run: u64,
    /// Model runs that found a failing execution.
    pub models_failed: u64,
    /// Executions (interleavings) explored across all runs.
    pub iterations: u64,
    /// Nondeterministic choices taken across all runs.
    pub choice_points: u64,
    /// Longest choice vector seen in any run.
    pub max_depth: u64,
}

/// Read the global counters.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        models_run: MODELS_RUN.load(Ordering::Relaxed),
        models_failed: MODELS_FAILED.load(Ordering::Relaxed),
        iterations: ITERATIONS.load(Ordering::Relaxed),
        choice_points: CHOICE_POINTS.load(Ordering::Relaxed),
        max_depth: MAX_DEPTH.load(Ordering::Relaxed),
    }
}
