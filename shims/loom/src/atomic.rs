//! Model-aware atomics.
//!
//! Each type wraps the corresponding `std::sync::atomic` type.  Outside an
//! active model execution every operation delegates to the real atomic, so
//! code threaded through the facade behaves identically in ordinary tests.
//! Inside a model execution ([`crate::model`]) operations are routed to the
//! runtime's per-location store histories instead, where scheduling and
//! weak-memory visibility are explored systematically; the wrapped std
//! atomic then keeps holding the *initial* value, which seeds the location
//! on first access (so objects created before the model closure still start
//! from a consistent value every iteration).
//!
//! `get_mut`/`into_inner` take `&mut self`/`self`, which proves exclusive
//! access: under a model they resync the wrapped std value from the latest
//! store in modification order (no visibility branching — an exclusive
//! reference rules out concurrent observers) and hand out the std reference.

use std::marker::PhantomData;
pub use std::sync::atomic::Ordering;

use crate::rt;

/// Identity of an atomic for the runtime's location table: its address.
/// Stable once the object is in place (all model operations go through
/// `&self`); `Location` state is re-seeded from the std value on first
/// touch of a fresh execution.
fn addr<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

macro_rules! int_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Model-aware drop-in for the std atomic of the same name.
        #[derive(Debug, Default)]
        pub struct $name {
            std: $std,
        }

        impl $name {
            pub fn new(v: $prim) -> Self {
                Self {
                    std: <$std>::new(v),
                }
            }

            #[inline]
            fn initial(&self) -> u64 {
                self.std.load(Ordering::Relaxed) as u64
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_load(&ctx, addr(self), ord, self.initial()) as $prim,
                    None => self.std.load(ord),
                }
            }

            pub fn store(&self, val: $prim, ord: Ordering) {
                match rt::ctx() {
                    Some(ctx) => {
                        rt::atomic_store(&ctx, addr(self), val as u64, ord, self.initial())
                    }
                    None => self.std.store(val, ord),
                }
            }

            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => {
                        rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |_| val as u64)
                            as $prim
                    }
                    None => self.std.swap(val, ord),
                }
            }

            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |v| {
                        (v as $prim).wrapping_add(val) as u64
                    }) as $prim,
                    None => self.std.fetch_add(val, ord),
                }
            }

            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |v| {
                        (v as $prim).wrapping_sub(val) as u64
                    }) as $prim,
                    None => self.std.fetch_sub(val, ord),
                }
            }

            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |v| {
                        ((v as $prim) | val) as u64
                    }) as $prim,
                    None => self.std.fetch_or(val, ord),
                }
            }

            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |v| {
                        ((v as $prim) & val) as u64
                    }) as $prim,
                    None => self.std.fetch_and(val, ord),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match rt::ctx() {
                    Some(ctx) => rt::atomic_cas(
                        &ctx,
                        addr(self),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                        self.initial(),
                    )
                    .map(|v| v as $prim)
                    .map_err(|v| v as $prim),
                    None => self.std.compare_exchange(current, new, success, failure),
                }
            }

            /// Modeled without spurious failure (see the runtime docs).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match rt::ctx() {
                    Some(_) => self.compare_exchange(current, new, success, failure),
                    None => self
                        .std
                        .compare_exchange_weak(current, new, success, failure),
                }
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                if let Some(ctx) = rt::ctx() {
                    let latest = rt::atomic_latest(&ctx, addr(&*self), self.initial());
                    *self.std.get_mut() = latest as $prim;
                }
                self.std.get_mut()
            }

            pub fn into_inner(mut self) -> $prim {
                *self.get_mut()
            }
        }
    };
}

int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);

/// Model-aware `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    std: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self {
            std: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline]
    fn initial(&self) -> u64 {
        self.std.load(Ordering::Relaxed) as u64
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match rt::ctx() {
            Some(ctx) => rt::atomic_load(&ctx, addr(self), ord, self.initial()) != 0,
            None => self.std.load(ord),
        }
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        match rt::ctx() {
            Some(ctx) => rt::atomic_store(&ctx, addr(self), val as u64, ord, self.initial()),
            None => self.std.store(val, ord),
        }
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match rt::ctx() {
            Some(ctx) => rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |_| val as u64) != 0,
            None => self.std.swap(val, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match rt::ctx() {
            Some(ctx) => rt::atomic_cas(
                &ctx,
                addr(self),
                current as u64,
                new as u64,
                success,
                failure,
                self.initial(),
            )
            .map(|v| v != 0)
            .map_err(|v| v != 0),
            None => self.std.compare_exchange(current, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut bool {
        if let Some(ctx) = rt::ctx() {
            let latest = rt::atomic_latest(&ctx, addr(&*self), self.initial());
            *self.std.get_mut() = latest != 0;
        }
        self.std.get_mut()
    }

    pub fn into_inner(mut self) -> bool {
        *self.get_mut()
    }
}

/// Model-aware `AtomicPtr`.  The runtime tracks the pointer as an address
/// value; the facade's users own the pointee through other means (the
/// segmented queue's block chain), so no provenance bookkeeping is needed —
/// and outside models the real `std` atomic carries the pointer untouched.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    std: std::sync::atomic::AtomicPtr<T>,
    _marker: PhantomData<()>,
}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        Self {
            std: std::sync::atomic::AtomicPtr::new(p),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn initial(&self) -> u64 {
        self.std.load(Ordering::Relaxed) as usize as u64
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        match rt::ctx() {
            Some(ctx) => rt::atomic_load(&ctx, addr(self), ord, self.initial()) as usize as *mut T,
            None => self.std.load(ord),
        }
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        match rt::ctx() {
            Some(ctx) => rt::atomic_store(&ctx, addr(self), p as usize as u64, ord, self.initial()),
            None => self.std.store(p, ord),
        }
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match rt::ctx() {
            Some(ctx) => {
                rt::atomic_rmw(&ctx, addr(self), ord, self.initial(), |_| p as usize as u64)
                    as usize as *mut T
            }
            None => self.std.swap(p, ord),
        }
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match rt::ctx() {
            Some(ctx) => rt::atomic_cas(
                &ctx,
                addr(self),
                current as usize as u64,
                new as usize as u64,
                success,
                failure,
                self.initial(),
            )
            .map(|v| v as usize as *mut T)
            .map_err(|v| v as usize as *mut T),
            None => self.std.compare_exchange(current, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        if let Some(ctx) = rt::ctx() {
            let latest = rt::atomic_latest(&ctx, addr(&*self), self.initial());
            *self.std.get_mut() = latest as usize as *mut T;
        }
        self.std.get_mut()
    }

    pub fn into_inner(mut self) -> *mut T {
        *self.get_mut()
    }
}

/// Model-aware memory fence.
pub fn fence(ord: Ordering) {
    match rt::ctx() {
        Some(ctx) => rt::atomic_fence(&ctx, ord),
        None => std::sync::atomic::fence(ord),
    }
}
