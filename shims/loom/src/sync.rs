//! Model-aware `Mutex`/`Condvar` with the `std::sync` API shape.
//!
//! Outside a model execution these delegate straight to `std`.  Inside one,
//! lock ownership and condvar wait queues are mirrored into the runtime
//! ([`crate::rt`]) so the scheduler can explore wake orders and detect
//! deadlocks/lost wakeups, while the *data* still lives in the wrapped std
//! mutex (the baton scheduler guarantees the std lock is always free by the
//! time the model grants ownership, so taking it never blocks the OS
//! thread).
//!
//! `Condvar::wait_timeout` never times out under the model — model tests
//! must make progress through notifications, or the deadlock detector fires.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, LockResult, MutexGuard as StdMutexGuard, PoisonError};
use std::time::Duration;

pub use crate::atomic;
pub use std::sync::Arc;

use crate::rt;

fn addr<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

/// Model-aware drop-in for `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    std: std::sync::Mutex<T>,
}

/// Guard pairing the std guard with the runtime's lock-ownership record.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Whether the runtime currently records us as the holder.  Cleared
    /// around `Condvar::wait` so an abort-unwind mid-wait doesn't release a
    /// model lock we no longer hold.
    model_locked: bool,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            std: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model_locked = match rt::ctx() {
            Some(ctx) => {
                rt::mutex_lock(&ctx, addr(self));
                true
            }
            None => false,
        };
        match self.std.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model_locked,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model_locked,
            })),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.std.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.std.get_mut()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the std lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the model lock so the thread the
        // runtime wakes next finds it free.
        self.inner = None;
        if self.model_locked {
            if let Some(ctx) = rt::ctx() {
                rt::mutex_unlock(&ctx, addr(self.lock));
            }
        }
    }
}

/// Result of `Condvar::wait_timeout`.  Own type because `std`'s cannot be
/// constructed; under the model it always reports "not timed out".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-aware drop-in for `std::sync::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    std: StdCondvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self {
            std: StdCondvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::ctx() {
            Some(ctx) => {
                let lock = guard.lock;
                guard.inner = None;
                guard.model_locked = false;
                rt::condvar_wait(&ctx, addr(self), addr(lock));
                guard.model_locked = true;
                match lock.std.lock() {
                    Ok(g) => {
                        guard.inner = Some(g);
                        Ok(guard)
                    }
                    Err(p) => {
                        guard.inner = Some(p.into_inner());
                        Err(PoisonError::new(guard))
                    }
                }
            }
            None => {
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard holds the std lock");
                drop(guard);
                match self.std.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model_locked: false,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model_locked: false,
                    })),
                }
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match rt::ctx() {
            Some(_) => {
                let never = WaitTimeoutResult { timed_out: false };
                match self.wait(guard) {
                    Ok(g) => Ok((g, never)),
                    Err(p) => Err(PoisonError::new((p.into_inner(), never))),
                }
            }
            None => {
                let lock = guard.lock;
                let mut guard = guard;
                let std_guard = guard.inner.take().expect("guard holds the std lock");
                drop(guard);
                match self.std.wait_timeout(std_guard, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(g),
                            model_locked: false,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                model_locked: false,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::ctx() {
            Some(ctx) => rt::condvar_notify(&ctx, addr(self), false),
            None => self.std.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match rt::ctx() {
            Some(ctx) => rt::condvar_notify(&ctx, addr(self), true),
            None => self.std.notify_all(),
        }
    }
}
