//! Runtime of the offline loom-subset model checker.
//!
//! One *model run* ([`explore`]) executes the user closure many times.  Each
//! execution runs the model's threads as real OS threads, but a baton
//! protocol guarantees **exactly one runs at a time**; every visible
//! operation (atomic access, mutex, condvar, park/unpark, spawn/join, yield)
//! first reaches a *schedule point* where the runtime decides which thread
//! continues.  Every such decision — and every weak-memory value choice — is
//! funnelled through [`ExecState::choose`], so an execution is fully
//! described by its choice vector.  Exploration is a depth-first walk over
//! those vectors: re-run with the recorded prefix, take the first untried
//! alternative at the deepest unexhausted choice point, repeat until the
//! tree is exhausted.
//!
//! # Interleaving exploration
//!
//! Scheduling is *bounded-preemption* DFS: switching away from a thread that
//! could have continued costs one unit of the preemption budget
//! ([`Config::preemption_bound`]); voluntary switches (blocking, yielding,
//! finishing) are free.  This explores every execution with up to N
//! preemptions — the bug-dense region (empirically almost all concurrency
//! bugs need ≤ 2 preemptions) — while keeping the tree polynomial.
//!
//! # Memory model
//!
//! Each thread carries a vector clock; each atomic location keeps its full
//! store history in modification order.  A store records the storing
//! thread's clock (`know`) and, for `Release`/`AcqRel`/`SeqCst` stores, a
//! release clock that `Acquire` loads join.  A load may read any store not
//! *hidden* from it — a store is hidden when a modification-order-later
//! store to the same location already happens-before the loading thread —
//! and the checker branches over the candidates, which is how a `Relaxed`
//! publish bug manifests as an execution that reads stale data.
//! Read-modify-writes always read the latest store (C11 atomicity) and
//! continue the release sequence of the store they replace.
//!
//! ## Deliberate approximations (all *stronger* than C11, never weaker for
//! the protocols in this tree)
//!
//! * `SeqCst` operations synchronize through a single global clock: stores,
//!   RMWs and fences join it both ways, loads join it one way.  This gives
//!   the C++20 SC-fence guarantees the Dekker patterns in
//!   `crossbeam::channel` rely on, but orders *unrelated* SC operations more
//!   strongly than the standard requires.
//! * `Acquire`/`Release` *fences* are treated as `SeqCst` fences (the
//!   workspace only issues `SeqCst` fences).
//! * `compare_exchange_weak` never fails spuriously, condvars never wake
//!   spuriously, and `park` never returns spuriously.  All call sites loop,
//!   so these would only add interleavings equivalent to ones already
//!   explored via scheduling.
//! * Condvar `wait_timeout` never times out and `recv_timeout`-style
//!   deadlines are invisible: model tests must not rely on timeouts for
//!   progress.
//! * A thread takes at most [`STALE_BOUND`] consecutive stale loads from one
//!   location before being forced to see the newest store — C11's
//!   eventual-visibility guarantee, and what makes spin loops generate a
//!   finite choice tree.
//!
//! # Failure detection
//!
//! A panic in any model thread (assertion failure), a state where every
//! live thread is blocked (deadlock — which is also how a *lost wakeup*
//! manifests), or an execution exceeding [`Config::max_steps`] (livelock)
//! aborts the run; [`explore`] reports the failing execution's choice
//! vector so it can be reasoned about and `model` panics with it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};

// ---------------------------------------------------------------------------
// Configuration and results
// ---------------------------------------------------------------------------

/// Exploration bounds.  The defaults explore every interleaving with at most
/// two preemptions, which is exhaustive for the protocol tests in this tree
/// while keeping the choice tree small.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of *involuntary* context switches per execution.
    pub preemption_bound: usize,
    /// Hard cap on explored executions; exceeding it fails the run loudly
    /// (a silently truncated exploration would rot into a no-op check).
    pub max_iterations: u64,
    /// Hard cap on schedule points in a single execution; exceeding it is
    /// reported as a livelock.
    pub max_steps: usize,
    /// Maximum live model threads.
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_iterations: 500_000,
            max_steps: 50_000,
            max_threads: 8,
        }
    }
}

/// Summary of a completed (bug-free) exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Executions (interleavings) explored.
    pub iterations: u64,
    /// Total nondeterministic choices taken across all executions.
    pub choice_points: u64,
    /// Longest choice vector seen.
    pub max_depth: usize,
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn set(&mut self, i: usize, v: u32) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    fn tick(&mut self, i: usize) {
        self.set(i, self.get(i) + 1);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-location store history
// ---------------------------------------------------------------------------

struct Store {
    val: u64,
    /// Storing thread (`usize::MAX` for the initial value, which
    /// happens-before everything).
    who: usize,
    /// The storing thread's clock at store time; used for the hidden-store
    /// rule.
    know: VClock,
    /// Release clock carried to `Acquire` loads (None for `Relaxed`).
    rel: Option<VClock>,
}

/// Consecutive stale (non-newest) loads a thread may take from one location
/// before it is forced to observe the newest store.  Models C11's
/// eventual-visibility guarantee ("an implementation should ensure that the
/// latest value ... becomes visible in a finite period of time") and is what
/// keeps spin loops from generating an infinite choice tree.
const STALE_BOUND: u32 = 3;

struct Location {
    stores: Vec<Store>,
    /// Per-thread coherence floor: the lowest store index each thread may
    /// still read (raised by its own reads and writes).
    floor: HashMap<usize, usize>,
    /// Per-thread count of consecutive stale loads (see [`STALE_BOUND`]).
    streak: HashMap<usize, u32>,
}

impl Location {
    fn new(initial: u64) -> Self {
        Self {
            stores: vec![Store {
                val: initial,
                who: usize::MAX,
                know: VClock::default(),
                rel: None,
            }],
            floor: HashMap::new(),
            streak: HashMap::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockedOn {
    Mutex(usize),
    Condvar(usize),
    Park,
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockedOn),
    Done,
}

struct ThreadState {
    status: Status,
    /// Set by `yield_now`; a yielded thread is only scheduled when every
    /// runnable thread has yielded (this is what makes spin loops converge).
    yielded: bool,
    clock: VClock,
    park_token: bool,
    /// Causality carried by `unpark`, joined when `park` returns.
    unpark_clock: VClock,
    baton: Arc<Baton>,
    final_clock: Option<VClock>,
}

#[derive(Default)]
struct MutexState {
    held_by: Option<usize>,
    /// Release clock left by the last unlock.
    clock: VClock,
}

// ---------------------------------------------------------------------------
// Choice points
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct ChoicePoint {
    options: usize,
    chosen: usize,
    label: &'static str,
}

// ---------------------------------------------------------------------------
// Baton: hands the single execution token between model threads
// ---------------------------------------------------------------------------

pub(crate) struct Baton {
    flag: StdMutex<bool>,
    cv: StdCondvar,
}

impl Baton {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            flag: StdMutex::new(false),
            cv: StdCondvar::new(),
        })
    }

    fn wait(&self) {
        let mut g = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g = false;
    }

    fn signal(&self) {
        *self.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

struct ExecState {
    threads: Vec<ThreadState>,
    locations: HashMap<usize, Location>,
    mutexes: HashMap<usize, MutexState>,
    /// FIFO wait queues per condvar address.
    condvars: HashMap<usize, Vec<usize>>,
    sc_clock: VClock,
    path: Vec<ChoicePoint>,
    cursor: usize,
    steps: usize,
    preemptions: usize,
    live: usize,
    cfg: Config,
    failed: Option<String>,
    abort: bool,
}

impl ExecState {
    fn new(cfg: Config, path: Vec<ChoicePoint>) -> Self {
        Self {
            threads: Vec::new(),
            locations: HashMap::new(),
            mutexes: HashMap::new(),
            condvars: HashMap::new(),
            sc_clock: VClock::default(),
            path,
            cursor: 0,
            steps: 0,
            preemptions: 0,
            live: 0,
            cfg,
            failed: None,
            abort: false,
        }
    }

    /// Take (during replay) or create (at the frontier) the next choice.
    fn choose(&mut self, options: usize, label: &'static str) -> usize {
        if options <= 1 {
            return 0;
        }
        let chosen = if self.cursor < self.path.len() {
            let cp = self.path[self.cursor];
            assert_eq!(
                cp.options, options,
                "loom: nondeterministic replay at choice {} ({label} vs {}): \
                 the model closure must be deterministic apart from scheduling",
                self.cursor, cp.label
            );
            cp.chosen
        } else {
            self.path.push(ChoicePoint {
                options,
                chosen: 0,
                label,
            });
            0
        };
        self.cursor += 1;
        chosen
    }

    /// Pick the thread to run next.  `voluntary` is true when the current
    /// thread cannot or will not continue (blocked, yielding, finished):
    /// those switches don't consume the preemption budget.
    fn pick_next(&mut self, me: usize, me_schedulable: bool, voluntary: bool) -> Option<usize> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| t.status == Status::Runnable && (me_schedulable || *i != me))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let fresh: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&i| !self.threads[i].yielded)
            .collect();
        // When every runnable thread has yielded, the round is over: clear
        // all the flags, not just the chosen thread's, or the deterministic
        // choice-0 path re-picks the same thread forever and starves the
        // rest (their flags would never be cleared).
        let mut cands = if fresh.is_empty() {
            for &i in &runnable {
                self.threads[i].yielded = false;
            }
            runnable
        } else {
            fresh
        };
        // Preemption bound: once the budget is spent, a schedulable current
        // thread keeps running.
        if !voluntary
            && me_schedulable
            && self.preemptions >= self.cfg.preemption_bound
            && cands.contains(&me)
        {
            cands = vec![me];
        }
        // Voluntary switches (yield, block, exit) are deterministic
        // round-robin, not choice points: every atomic op already has a
        // preemptive schedule point in front of it, so branching again on
        // yields only multiplies the tree without reaching new races (the
        // module docs list this under approximations).
        let next = if voluntary {
            *cands
                .iter()
                .find(|&&i| i > me)
                .unwrap_or_else(|| cands.first().expect("cands is non-empty"))
        } else {
            let i = self.choose(cands.len(), "schedule");
            cands[i]
        };
        if !voluntary && me_schedulable && next != me {
            self.preemptions += 1;
        }
        self.threads[next].yielded = false;
        Some(next)
    }

    fn location(&mut self, addr: usize, initial: u64) -> &mut Location {
        self.locations
            .entry(addr)
            .or_insert_with(|| Location::new(initial))
    }

    fn describe_threads(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("t{i}:{:?}", t.status))
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn schedule_trace(&self) -> String {
        let mut out = String::new();
        for cp in &self.path {
            out.push_str(&format!("{}:{}/{} ", cp.label, cp.chosen, cp.options));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<StdMutex<ExecState>>,
    driver: Arc<Baton>,
    tid: usize,
    baton: Arc<Baton>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Whether the calling thread belongs to an active model execution.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Identifier of the current model thread (used by `thread::current`).
pub(crate) fn current_tid(ctx: &Ctx) -> usize {
    ctx.tid
}

fn lock_ex(ctx: &Ctx) -> StdMutexGuard<'_, ExecState> {
    ctx.exec.lock().unwrap_or_else(|e| e.into_inner())
}

/// Sentinel panic payload used to unwind model threads on abort without
/// recording a failure.
struct LoomAbort;

fn abort_unwind() -> ! {
    std::panic::panic_any(LoomAbort)
}

/// Whether the calling model thread is unwinding (assertion failure or
/// abort teardown).  Its `Drop` impls still run — and may touch model
/// atomics/mutexes — but must not schedule, make choices, or re-panic:
/// every runtime entry point degrades to a degenerate, exec-lock-serialized
/// operation in this state so teardown always completes.
fn unwinding() -> bool {
    std::thread::panicking()
}

/// Record a failure (first one wins), wake every live thread so the
/// iteration can tear down, and unwind.
fn fail(ctx: &Ctx, mut ex: StdMutexGuard<'_, ExecState>, msg: String) -> ! {
    if ex.failed.is_none() {
        let detail = format!(
            "{msg}\n  threads: {}\n  schedule: {}",
            ex.describe_threads(),
            ex.schedule_trace()
        );
        ex.failed = Some(detail);
    }
    ex.abort = true;
    let batons: Vec<Arc<Baton>> = ex
        .threads
        .iter()
        .enumerate()
        .filter(|(i, t)| *i != ctx.tid && t.status != Status::Done)
        .map(|(_, t)| t.baton.clone())
        .collect();
    drop(ex);
    for b in batons {
        b.signal();
    }
    abort_unwind()
}

/// Hand the baton to `next` and wait for it to come back to us.
fn transfer(ctx: &Ctx, next: usize) {
    if next == ctx.tid {
        return;
    }
    let baton = {
        let ex = lock_ex(ctx);
        ex.threads[next].baton.clone()
    };
    baton.signal();
    ctx.baton.wait();
    let ex = lock_ex(ctx);
    if ex.abort {
        drop(ex);
        abort_unwind();
    }
}

/// A schedule point: maybe switch to another thread.  Called before every
/// visible operation.  `voluntary` marks yields.
fn schedule_point(ctx: &Ctx, voluntary: bool) {
    if unwinding() {
        return;
    }
    let next = {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        ex.steps += 1;
        if ex.steps > ex.cfg.max_steps {
            let max = ex.cfg.max_steps;
            fail(
                ctx,
                ex,
                format!("loom: execution exceeded {max} steps (livelock?)"),
            );
        }
        match ex.pick_next(ctx.tid, true, voluntary) {
            Some(next) => next,
            None => fail(ctx, ex, "loom: no runnable thread".to_string()),
        }
    };
    transfer(ctx, next);
}

/// Block the current thread on `on` and run someone else.  The waker is
/// responsible for setting our status back to `Runnable`.
fn block_and_switch(ctx: &Ctx, on: BlockedOn) {
    let next = {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        ex.threads[ctx.tid].status = Status::Blocked(on);
        match ex.pick_next(ctx.tid, false, true) {
            Some(next) => next,
            None => {
                let what = format!(
                    "loom: deadlock — every live thread is blocked \
                     (this is also how a lost wakeup manifests); blocking on {on:?}"
                );
                fail(ctx, ex, what)
            }
        }
    };
    transfer(ctx, next);
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Per-operation trace to stderr, enabled by setting `PLP_LOOM_TRACE` —
/// the first debugging step when a model run fails inexplicably.
fn trace(args: std::fmt::Arguments<'_>) {
    static ON: OnceLock<bool> = OnceLock::new();
    if *ON.get_or_init(|| std::env::var_os("PLP_LOOM_TRACE").is_some()) {
        eprintln!("{args}");
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) fn atomic_load(ctx: &Ctx, addr: usize, ord: Ordering, initial: u64) -> u64 {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    if ord == Ordering::SeqCst {
        // One-way: an SC load acquires everything published by earlier SC
        // stores/RMWs/fences.
        let sc = ex.sc_clock.clone();
        ex.threads[me].clock.join(&sc);
    }
    if ex.abort || unwinding() {
        // Teardown: `Drop` impls read the latest value, no branching.
        let loc = ex.location(addr, initial);
        return loc
            .stores
            .last()
            .expect("location has an initial store")
            .val;
    }
    let clock = ex.threads[me].clock.clone();
    let loc = ex.location(addr, initial);
    // Hidden-store rule: the latest store that happens-before us bounds what
    // we may still read; our own coherence floor bounds it further.
    let mut floor = 0;
    for (j, s) in loc.stores.iter().enumerate() {
        if s.who == usize::MAX || s.know.get(s.who) <= clock.get(s.who) {
            floor = j;
        }
    }
    floor = floor.max(loc.floor.get(&me).copied().unwrap_or(0));
    let newest = loc.stores.len() - 1;
    let streak = loc.streak.get(&me).copied().unwrap_or(0);
    // Branch between the newest store and at most one stale step back.  A
    // single stale step is what a missing-Acquire race reads (the value from
    // just before the publication), and capping the fan-out here keeps spin
    // loops from exploding the tree; deeper staleness is reachable across
    // successive loads anyway since the per-thread floor only ratchets on
    // values actually read.
    let options = if streak >= STALE_BOUND {
        1
    } else {
        (newest - floor + 1).min(2)
    };
    // Option 0 reads the newest store so the first execution is the
    // "expected" one; later DFS branches read progressively staler values.
    let pick = newest - ex.choose(options, "load");
    let loc = ex.locations.get_mut(&addr).expect("location just touched");
    let val = loc.stores[pick].val;
    let rel = loc.stores[pick].rel.clone();
    loc.floor.insert(me, pick.max(floor));
    loc.streak
        .insert(me, if pick == newest { 0 } else { streak + 1 });
    if is_acquire(ord) {
        if let Some(rel) = rel {
            ex.threads[me].clock.join(&rel);
        }
    }
    trace(format_args!(
        "t{me} load  {addr:#x} -> {val} (pick {pick}/{n}, floor {floor})",
        n = ex.locations[&addr].stores.len()
    ));
    val
}

pub(crate) fn atomic_store(ctx: &Ctx, addr: usize, val: u64, ord: Ordering, initial: u64) {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    ex.threads[me].clock.tick(me);
    if ord == Ordering::SeqCst {
        let sc = ex.sc_clock.clone();
        ex.threads[me].clock.join(&sc);
        let clock = ex.threads[me].clock.clone();
        ex.sc_clock.join(&clock);
    }
    let clock = ex.threads[me].clock.clone();
    let rel = is_release(ord).then(|| clock.clone());
    let loc = ex.location(addr, initial);
    loc.stores.push(Store {
        val,
        who: me,
        know: clock,
        rel,
    });
    let idx = loc.stores.len() - 1;
    loc.floor.insert(me, idx);
    trace(format_args!("t{me} store {addr:#x} <- {val} (idx {idx})"));
}

/// Shared read-modify-write path: applies `f` to the latest store (C11
/// atomicity), continues its release sequence, and returns the old value.
pub(crate) fn atomic_rmw(
    ctx: &Ctx,
    addr: usize,
    ord: Ordering,
    initial: u64,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    rmw_locked(&mut ex, ctx.tid, addr, ord, initial, f)
}

fn rmw_locked(
    ex: &mut ExecState,
    me: usize,
    addr: usize,
    ord: Ordering,
    initial: u64,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    ex.threads[me].clock.tick(me);
    if ord == Ordering::SeqCst {
        let sc = ex.sc_clock.clone();
        ex.threads[me].clock.join(&sc);
        let clock = ex.threads[me].clock.clone();
        ex.sc_clock.join(&clock);
    }
    let loc = ex.location(addr, initial);
    let last = loc.stores.last().expect("location has an initial store");
    let prev = last.val;
    let prev_rel = last.rel.clone();
    if is_acquire(ord) {
        if let Some(rel) = prev_rel.clone() {
            ex.threads[me].clock.join(&rel);
        }
    }
    let clock = ex.threads[me].clock.clone();
    // Release-sequence continuation: even a Relaxed RMW carries forward the
    // release clock of the store it replaces.
    let rel = if is_release(ord) {
        let mut c = prev_rel.unwrap_or_default();
        c.join(&clock);
        Some(c)
    } else {
        prev_rel
    };
    let val = f(prev);
    let loc = ex.location(addr, initial);
    loc.stores.push(Store {
        val,
        who: me,
        know: clock,
        rel,
    });
    let idx = loc.stores.len() - 1;
    loc.floor.insert(me, idx);
    trace(format_args!(
        "t{me} rmw   {addr:#x} {prev} -> {val} (idx {idx})"
    ));
    prev
}

pub(crate) fn atomic_cas(
    ctx: &Ctx,
    addr: usize,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
    initial: u64,
) -> Result<u64, u64> {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    let loc = ex.location(addr, initial);
    let last = loc.stores.last().expect("location has an initial store");
    let prev = last.val;
    if prev == current {
        rmw_locked(&mut ex, me, addr, success, initial, |_| new);
        Ok(prev)
    } else {
        // Failed CAS acts as a load of the latest value with the failure
        // ordering.
        let rel = last.rel.clone();
        let idx = loc.stores.len() - 1;
        loc.floor.insert(me, idx);
        if failure == Ordering::SeqCst {
            let sc = ex.sc_clock.clone();
            ex.threads[me].clock.join(&sc);
        }
        if is_acquire(failure) {
            if let Some(rel) = rel {
                ex.threads[me].clock.join(&rel);
            }
        }
        Err(prev)
    }
}

pub(crate) fn atomic_fence(ctx: &Ctx, _ord: Ordering) {
    // All fences are modeled as SeqCst fences (see the module docs).
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    ex.threads[me].clock.tick(me);
    let sc = ex.sc_clock.clone();
    ex.threads[me].clock.join(&sc);
    let clock = ex.threads[me].clock.clone();
    ex.sc_clock.join(&clock);
}

/// Latest value in modification order, for `get_mut`/`into_inner` on
/// exclusively-owned atomics (no visibility branching: `&mut self` proves
/// no concurrent access).
pub(crate) fn atomic_latest(ctx: &Ctx, addr: usize, initial: u64) -> u64 {
    let mut ex = lock_ex(ctx);
    let loc = ex.location(addr, initial);
    loc.stores
        .last()
        .expect("location has an initial store")
        .val
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

pub(crate) fn mutex_lock(ctx: &Ctx, addr: usize) {
    if unwinding() {
        // Teardown: the wrapped std mutex still provides real exclusion.
        return;
    }
    schedule_point(ctx, false);
    loop {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        let me = ctx.tid;
        let m = ex.mutexes.entry(addr).or_default();
        match m.held_by {
            None => {
                m.held_by = Some(me);
                let mclock = m.clock.clone();
                ex.threads[me].clock.join(&mclock);
                return;
            }
            Some(holder) if holder == me => {
                fail(
                    ctx,
                    ex,
                    "loom: thread relocked a mutex it already holds".to_string(),
                );
            }
            Some(_) => {
                drop(ex);
                block_and_switch(ctx, BlockedOn::Mutex(addr));
                // Retry: the unlocker made us runnable; someone else may
                // have raced us to the lock, in which case we block again.
            }
        }
    }
}

fn mutex_unlock_locked(ex: &mut ExecState, me: usize, addr: usize) {
    let clock = ex.threads[me].clock.clone();
    let m = ex.mutexes.entry(addr).or_default();
    if m.held_by != Some(me) {
        // Only reachable during teardown, where `mutex_lock` degenerated to
        // a no-op; a consistent execution always unlocks its own lock.
        return;
    }
    m.held_by = None;
    m.clock.join(&clock);
    for t in ex.threads.iter_mut() {
        if t.status == Status::Blocked(BlockedOn::Mutex(addr)) {
            t.status = Status::Runnable;
        }
    }
}

pub(crate) fn mutex_unlock(ctx: &Ctx, addr: usize) {
    let mut ex = lock_ex(ctx);
    mutex_unlock_locked(&mut ex, ctx.tid, addr);
}

/// Atomically release `mutex_addr`, wait on `cv_addr`, then reacquire.
///
/// The schedule point *before* enqueueing is what exposes lost wakeups: a
/// notifier that doesn't synchronize with the waiter's predicate check can
/// be scheduled into the check→wait window, where its notification finds no
/// waiter and vanishes.
pub(crate) fn condvar_wait(ctx: &Ctx, cv_addr: usize, mutex_addr: usize) {
    if unwinding() {
        // Teardown: never block; the caller's predicate loop re-checks.
        return;
    }
    schedule_point(ctx, false);
    {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        let me = ctx.tid;
        ex.condvars.entry(cv_addr).or_default().push(me);
        mutex_unlock_locked(&mut ex, me, mutex_addr);
    }
    block_and_switch(ctx, BlockedOn::Condvar(cv_addr));
    mutex_lock(ctx, mutex_addr);
}

/// Wake one (FIFO) or all waiters.  A notification with no waiter is lost —
/// exactly the semantics that lets the checker catch lost-wakeup bugs as
/// deadlocks.
pub(crate) fn condvar_notify(ctx: &Ctx, cv_addr: usize, all: bool) {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let waiters = ex.condvars.entry(cv_addr).or_default();
    let n = if all {
        waiters.len()
    } else {
        waiters.len().min(1)
    };
    let woken: Vec<usize> = waiters.drain(..n).collect();
    for tid in woken {
        ex.threads[tid].status = Status::Runnable;
    }
}

// ---------------------------------------------------------------------------
// Park / unpark
// ---------------------------------------------------------------------------

pub(crate) fn park(ctx: &Ctx) {
    if unwinding() {
        // Teardown: never block; park loops re-check their predicate.
        return;
    }
    schedule_point(ctx, false);
    {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        let me = ctx.tid;
        if ex.threads[me].park_token {
            ex.threads[me].park_token = false;
            let uc = std::mem::take(&mut ex.threads[me].unpark_clock);
            ex.threads[me].clock.join(&uc);
            return;
        }
    }
    block_and_switch(ctx, BlockedOn::Park);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    ex.threads[me].park_token = false;
    let uc = std::mem::take(&mut ex.threads[me].unpark_clock);
    ex.threads[me].clock.join(&uc);
}

pub(crate) fn unpark(ctx: &Ctx, target: usize) {
    schedule_point(ctx, false);
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    ex.threads[me].clock.tick(me);
    let clock = ex.threads[me].clock.clone();
    let t = &mut ex.threads[target];
    t.unpark_clock.join(&clock);
    if t.status == Status::Blocked(BlockedOn::Park) {
        t.status = Status::Runnable;
    } else if t.status != Status::Done {
        t.park_token = true;
    }
}

// ---------------------------------------------------------------------------
// Yield
// ---------------------------------------------------------------------------

pub(crate) fn yield_now(ctx: &Ctx) {
    if unwinding() {
        return;
    }
    {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        ex.threads[ctx.tid].yielded = true;
    }
    schedule_point(ctx, true);
}

// ---------------------------------------------------------------------------
// Spawn / join / thread lifecycle
// ---------------------------------------------------------------------------

/// Spawn a model thread running `f`.  Returns its model thread id.
pub(crate) fn spawn(ctx: &Ctx, f: impl FnOnce() + Send + 'static) -> usize {
    schedule_point(ctx, false);
    let (tid, baton) = {
        let mut ex = lock_ex(ctx);
        let me = ctx.tid;
        if ex.threads.len() >= ex.cfg.max_threads {
            let max = ex.cfg.max_threads;
            fail(ctx, ex, format!("loom: more than {max} model threads"));
        }
        let tid = ex.threads.len();
        ex.threads[me].clock.tick(me);
        let mut clock = ex.threads[me].clock.clone();
        clock.tick(tid);
        let baton = Baton::new();
        ex.threads.push(ThreadState {
            status: Status::Runnable,
            yielded: false,
            clock,
            park_token: false,
            unpark_clock: VClock::default(),
            baton: baton.clone(),
            final_clock: None,
        });
        ex.live += 1;
        (tid, baton)
    };
    let child_ctx = Ctx {
        exec: ctx.exec.clone(),
        driver: ctx.driver.clone(),
        tid,
        baton,
    };
    std::thread::spawn(move || run_model_thread(child_ctx, f));
    tid
}

/// Body of every model OS thread: wait to be scheduled, run, tear down.
fn run_model_thread(ctx: Ctx, f: impl FnOnce()) {
    ctx.baton.wait();
    {
        let ex = lock_ex(&ctx);
        if ex.abort {
            drop(ex);
            thread_done(&ctx, None);
            return;
        }
    }
    CTX.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let result = std::panic::catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let failure = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.is::<LoomAbort>() {
                None
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                Some((*s).to_string())
            } else {
                Some("model thread panicked with a non-string payload".to_string())
            }
        }
    };
    thread_done(&ctx, failure);
}

/// Mark the current thread finished, wake joiners, and pass the baton on (or
/// signal the driver when the iteration is over).
fn thread_done(ctx: &Ctx, failure: Option<String>) {
    let mut ex = lock_ex(ctx);
    let me = ctx.tid;
    if let Some(msg) = failure {
        if ex.failed.is_none() {
            let detail = format!(
                "model thread t{me} panicked: {msg}\n  threads: {}\n  schedule: {}",
                ex.describe_threads(),
                ex.schedule_trace()
            );
            ex.failed = Some(detail);
        }
        ex.abort = true;
    }
    ex.threads[me].status = Status::Done;
    ex.threads[me].final_clock = Some(ex.threads[me].clock.clone());
    ex.live -= 1;
    for t in ex.threads.iter_mut() {
        if t.status == Status::Blocked(BlockedOn::Join(me)) {
            t.status = Status::Runnable;
        }
    }
    if ex.live == 0 {
        drop(ex);
        ctx.driver.signal();
        return;
    }
    if ex.abort {
        // Teardown: release everyone; they will observe `abort` and die.
        let batons: Vec<Arc<Baton>> = ex
            .threads
            .iter()
            .filter(|t| t.status != Status::Done)
            .map(|t| t.baton.clone())
            .collect();
        drop(ex);
        for b in batons {
            b.signal();
        }
        return;
    }
    match ex.pick_next(me, false, true) {
        Some(next) => {
            let baton = ex.threads[next].baton.clone();
            drop(ex);
            baton.signal();
        }
        None => {
            // Everyone left is blocked: deadlock.  Record it and tear down;
            // we're exiting anyway so no unwind is needed.
            let detail = format!(
                "loom: deadlock at thread exit — every live thread is blocked\n  \
                 threads: {}\n  schedule: {}",
                ex.describe_threads(),
                ex.schedule_trace()
            );
            if ex.failed.is_none() {
                ex.failed = Some(detail);
            }
            ex.abort = true;
            let batons: Vec<Arc<Baton>> = ex
                .threads
                .iter()
                .filter(|t| t.status != Status::Done)
                .map(|t| t.baton.clone())
                .collect();
            drop(ex);
            for b in batons {
                b.signal();
            }
        }
    }
}

/// Join a model thread: block until it finishes, then adopt its causality.
pub(crate) fn join(ctx: &Ctx, target: usize) {
    if unwinding() {
        return;
    }
    schedule_point(ctx, false);
    loop {
        let mut ex = lock_ex(ctx);
        if ex.abort {
            drop(ex);
            abort_unwind();
        }
        if ex.threads[target].status == Status::Done {
            let fc = ex.threads[target]
                .final_clock
                .clone()
                .expect("finished thread has a final clock");
            let me = ctx.tid;
            ex.threads[me].clock.join(&fc);
            return;
        }
        drop(ex);
        block_and_switch(ctx, BlockedOn::Join(target));
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Run `f` under the model checker, exploring every interleaving within the
/// configured bounds.  Returns exploration statistics, or the report of the
/// first failing execution.
pub fn explore<F>(cfg: Config, f: F) -> Result<Stats, String>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<ChoicePoint> = Vec::new();
    let mut stats = Stats::default();
    loop {
        stats.iterations += 1;
        if stats.iterations > cfg.max_iterations {
            return Err(format!(
                "loom: exploration exceeded {} iterations without exhausting \
                 the interleaving tree; simplify the model or raise the bound",
                cfg.max_iterations
            ));
        }
        let exec = Arc::new(StdMutex::new(ExecState::new(
            cfg,
            std::mem::take(&mut path),
        )));
        let driver = Baton::new();
        let baton = Baton::new();
        {
            let mut ex = exec.lock().unwrap_or_else(|e| e.into_inner());
            let mut clock = VClock::default();
            clock.tick(0);
            ex.threads.push(ThreadState {
                status: Status::Runnable,
                yielded: false,
                clock,
                park_token: false,
                unpark_clock: VClock::default(),
                baton: baton.clone(),
                final_clock: None,
            });
            ex.live = 1;
        }
        let main_ctx = Ctx {
            exec: exec.clone(),
            driver: driver.clone(),
            tid: 0,
            baton,
        };
        {
            let f = f.clone();
            let ctx = main_ctx.clone();
            std::thread::spawn(move || run_model_thread(ctx, move || f()));
        }
        main_ctx.baton.signal();
        driver.wait();
        let mut ex = exec.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(report) = ex.failed.take() {
            crate::metrics::record_run(&stats, true);
            return Err(format!(
                "loom: found a failing execution after {} iteration(s)\n{report}",
                stats.iterations
            ));
        }
        stats.max_depth = stats.max_depth.max(ex.path.len());
        stats.choice_points += ex.path.len() as u64;
        path = std::mem::take(&mut ex.path);
        drop(ex);
        // DFS advance: bump the deepest unexhausted choice point; drop the
        // exhausted tail.  An empty path means the tree is exhausted.
        loop {
            match path.last_mut() {
                None => {
                    crate::metrics::record_run(&stats, false);
                    return Ok(stats);
                }
                Some(cp) if cp.chosen + 1 < cp.options => {
                    cp.chosen += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
    }
}
