//! Model-aware `std::thread` subset: `spawn`/`JoinHandle`, `current`/
//! `Thread::unpark`, `park`, `yield_now`.
//!
//! Outside a model execution everything delegates to `std::thread`.  Inside
//! one, threads are runtime-managed (`crate::rt`): `spawn` registers a model
//! thread, `park`/`unpark` go through the runtime's token + causality
//! transfer, and `yield_now` marks the thread *yielded* so the scheduler
//! deprioritizes it until every runnable peer has yielded too — this is what
//! makes spin loops converge under DFS instead of exploding the tree.

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

/// Model-aware drop-in for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: HandleInner<T>,
}

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            HandleInner::Std(h) => h.join(),
            HandleInner::Model { tid, result } => {
                let ctx = rt::ctx().expect("model JoinHandle joined outside its model run");
                rt::join(&ctx, tid);
                // A model-thread panic aborts the whole execution before the
                // join returns, so reaching here means the closure completed.
                let v = result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread stored its result");
                Ok(v)
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::ctx() {
        Some(ctx) => {
            let result = Arc::new(StdMutex::new(None));
            let slot = result.clone();
            let tid = rt::spawn(&ctx, move || {
                let v = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            });
            JoinHandle {
                inner: HandleInner::Model { tid, result },
            }
        }
        None => JoinHandle {
            inner: HandleInner::Std(std::thread::spawn(f)),
        },
    }
}

/// Model-aware drop-in for `std::thread::Thread` (the `current`/`unpark`
/// subset the workspace uses).
#[derive(Clone, Debug)]
pub struct Thread(ThreadInner);

#[derive(Clone, Debug)]
enum ThreadInner {
    Std(std::thread::Thread),
    Model(usize),
}

impl Thread {
    pub fn unpark(&self) {
        match &self.0 {
            ThreadInner::Std(t) => t.unpark(),
            ThreadInner::Model(tid) => {
                let ctx = rt::ctx().expect("model Thread unparked outside its model run");
                rt::unpark(&ctx, *tid);
            }
        }
    }
}

pub fn current() -> Thread {
    match rt::ctx() {
        Some(ctx) => Thread(ThreadInner::Model(rt::current_tid(&ctx))),
        None => Thread(ThreadInner::Std(std::thread::current())),
    }
}

pub fn park() {
    match rt::ctx() {
        Some(ctx) => rt::park(&ctx),
        None => std::thread::park(),
    }
}

pub fn yield_now() {
    match rt::ctx() {
        Some(ctx) => rt::yield_now(&ctx),
        None => std::thread::yield_now(),
    }
}
