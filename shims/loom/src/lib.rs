//! Offline stand-in for the `loom` model checker — the subset the workspace
//! uses to exhaustively test its lock-free protocols.
//!
//! # What it is
//!
//! [`model`] runs a closure under a cooperative scheduler many times,
//! exploring every thread interleaving within a preemption bound *and* every
//! weak-memory value a `Relaxed`/`Acquire`/`Release`/`SeqCst` load is
//! allowed to observe (see [`rt`]'s module docs for the memory model and its
//! documented approximations).  Code is threaded through the types in
//! [`sync`] and [`thread`]; outside a model run those types delegate
//! directly to `std`, so a binary built with this crate linked in — but no
//! `model` call active — behaves exactly like one built against `std`.
//!
//! That dual mode is deliberate and differs from the real loom (which
//! replaces std globally under `cfg(loom)` and cannot run ordinary code):
//! it lets `cargo test --features loom-model` run the *entire* ordinary
//! test suite plus the model tests in one invocation.
//!
//! # What it is not
//!
//! Not a verifier for `unsafe` data races on non-atomic memory (Miri/TSan
//! cover that lane, see `docs/concurrency.md`), and not the real loom:
//! swap the real crate in when network access is available — call sites
//! need no changes for the API subset used here.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = n.clone();
//!             loom::thread::spawn(move || n.fetch_add(1, Ordering::Relaxed))
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```

#![forbid(unsafe_code)]

#[doc(hidden)]
pub mod atomic;
pub mod metrics;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{explore, Config, Stats};

/// Check `f` under the model with default bounds; panic with the failing
/// execution's report if a bug is found.
///
/// # Panics
///
/// Panics when any explored execution fails an assertion, deadlocks (which
/// is also how lost wakeups manifest), or livelocks past the step cap — the
/// panic message carries the failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// [`model`] with explicit exploration bounds.
pub fn model_with<F>(cfg: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(report) = rt::explore(cfg, f) {
        panic!("{report}");
    }
}
