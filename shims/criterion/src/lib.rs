//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API that `benches/primitives.rs`
//! uses: groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `iter`, and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical machinery it warms up, runs timed batches for
//! roughly the configured measurement time, and prints the best observed
//! ns/iter — enough to compare the storage-manager primitives against each
//! other. Swap the workspace dependency back to the real crate when network
//! access is available.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self, None, &id.name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self.criterion, Some(&self.name), &id.name, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(self.criterion, Some(&self.name), &id.name, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(config: &Criterion, group: Option<&str>, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode: Mode::WarmUp {
            until: Instant::now() + config.warm_up_time,
        },
        best_ns_per_iter: f64::INFINITY,
        sample_time: config.measurement_time.div_f64(config.sample_size as f64),
    };
    f(&mut bencher);
    for _ in 0..config.sample_size {
        bencher.mode = Mode::Sample;
        f(&mut bencher);
    }
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("  {label:<50} {:>12.1} ns/iter", bencher.best_ns_per_iter);
}

enum Mode {
    WarmUp { until: Instant },
    Sample,
}

pub struct Bencher {
    mode: Mode,
    best_ns_per_iter: f64,
    sample_time: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::WarmUp { until } => {
                while Instant::now() < until {
                    black_box(routine());
                }
            }
            Mode::Sample => {
                // Time batches of doubling size until one batch fills the
                // per-sample budget; score with the best batch.
                let mut iters: u64 = 1;
                let mut elapsed;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    elapsed = start.elapsed();
                    if elapsed >= self.sample_time || iters >= u64::MAX / 2 {
                        break;
                    }
                    iters *= 2;
                }
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                if ns < self.best_ns_per_iter {
                    self.best_ns_per_iter = ns;
                }
            }
        }
    }
}

/// Mirrors criterion's two `criterion_group!` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
