//! Demonstrate MRBTree repartitioning: shift load to a hot spot, rebalance the
//! partitions with slice/meld, and show throughput before and after.
//!
//! Run with: `cargo run --release --example repartitioning`

use std::time::Duration;

use plp_core::{Design, EngineConfig};
use plp_workloads::driver::{prepare_engine, run_timed};
use plp_workloads::micro::BalanceProbe;
use plp_workloads::tatp::SUBSCRIBER;

fn main() {
    let subscribers = 20_000;
    let workload = BalanceProbe::new(subscribers);
    let engine = prepare_engine(
        EngineConfig::new(Design::PlpLeaf).with_partitions(2),
        &workload,
    );
    let window = Duration::from_millis(500);

    let uniform = run_timed(&engine, &workload, 2, window, 1);
    println!(
        "uniform load        : {:.1} Ktps",
        uniform.throughput_tps() / 1e3
    );

    workload.enable_hotspot();
    let skewed = run_timed(&engine, &workload, 2, window, 2);
    println!(
        "hot spot, unbalanced: {:.1} Ktps",
        skewed.throughput_tps() / 1e3
    );

    // Rebalance: worker 0 takes the hot 10% of the key space, worker 1 the rest.
    let moved = engine
        .repartition(SUBSCRIBER, &[0, subscribers / 10])
        .expect("repartition");
    println!("repartitioned       : {moved} records moved");

    let rebalanced = run_timed(&engine, &workload, 2, window, 3);
    println!(
        "hot spot, rebalanced: {:.1} Ktps",
        rebalanced.throughput_tps() / 1e3
    );
    if let Some(pm) = engine.partition_manager() {
        println!("new bounds          : {:?}", pm.bounds(SUBSCRIBER));
    }
}
