//! Quickstart: create a PLP engine, load a tiny TATP database, run a few
//! transactions and print what the instrumentation saw.
//!
//! Run with: `cargo run --release --example quickstart`

use plp_core::{Design, EngineConfig};
use plp_instrument::{CsCategory, PageKind};
use plp_workloads::driver::{prepare_engine, run_fixed};
use plp_workloads::tatp::Tatp;

fn main() {
    let tatp = Tatp::new(1_000);
    let config = EngineConfig::new(Design::PlpLeaf).with_partitions(4);
    let engine = prepare_engine(config, &tatp);

    let result = run_fixed(&engine, &tatp, 4, 500, 42);
    println!("design            : {}", result.design);
    println!("committed         : {}", result.committed);
    println!(
        "throughput        : {:.1} Ktps",
        result.throughput_tps() / 1e3
    );
    println!(
        "index latches/txn : {:.2} (bypassed latch-free: {})",
        result.latches_per_txn(PageKind::Index),
        result.stats.latches.bypassed(PageKind::Index)
    );
    println!(
        "lock-mgr CS/txn   : {:.2}",
        result.cs_per_txn(CsCategory::LockMgr)
    );
    println!(
        "msg-passing CS/txn: {:.2}",
        result.cs_per_txn(CsCategory::MessagePassing)
    );
}
