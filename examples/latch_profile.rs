//! Profile where page latches go for one design and workload — the tooling
//! view behind Figures 2 and 3 of the paper.
//!
//! Run with: `cargo run --release --example latch_profile -- plp-leaf`

use plp_core::{Design, EngineConfig};
use plp_instrument::PageKind;
use plp_workloads::driver::{prepare_engine, run_fixed};
use plp_workloads::tatp::Tatp;

fn main() {
    let design = match std::env::args().nth(1).as_deref() {
        Some("baseline") => Design::Conventional { sli: false },
        Some("conventional") => Design::Conventional { sli: true },
        Some("logical") => Design::LogicalOnly,
        Some("plp-regular") => Design::PlpRegular,
        Some("plp-partition") => Design::PlpPartition,
        _ => Design::PlpLeaf,
    };
    let tatp = Tatp::new(2_000);
    let engine = prepare_engine(EngineConfig::new(design).with_partitions(4), &tatp);
    let r = run_fixed(&engine, &tatp, 4, 1_000, 3);
    println!("design: {}", design.name());
    println!("committed transactions: {}", r.committed);
    for kind in PageKind::ALL {
        println!(
            "{:>14}: {:>8.2} latched/txn  {:>8.2} latch-free/txn  {:>10} ns waited",
            kind.name(),
            r.stats.latches.acquired(kind) as f64 / r.committed.max(1) as f64,
            r.stats.latches.bypassed(kind) as f64 / r.committed.max(1) as f64,
            r.stats.latches.wait_nanos(kind),
        );
    }
}
