//! Compare all five execution designs on the TATP mix and print a summary
//! table — a miniature of the paper's evaluation.
//!
//! Run with: `cargo run --release --example tatp_demo`

use plp_core::{Design, EngineConfig};
use plp_instrument::{Cell, PageKind, Table};
use plp_workloads::driver::{prepare_engine, run_fixed};
use plp_workloads::tatp::Tatp;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let tatp = Tatp::new(5_000);
    let mut table = Table::new(
        format!("TATP mix, {threads} client threads"),
        &[
            "design",
            "Ktps",
            "aborts",
            "latches/txn",
            "contentious CS/txn",
        ],
    );
    for design in Design::ALL {
        let config = EngineConfig::new(design).with_partitions(threads);
        let engine = prepare_engine(config, &tatp);
        let r = run_fixed(&engine, &tatp, threads, 2_000, 7);
        table.row(vec![
            Cell::from(design.name()),
            Cell::FloatPrec(r.throughput_tps() / 1e3, 1),
            Cell::from(r.aborted),
            Cell::FloatPrec(
                r.latches_per_txn(PageKind::Index) + r.latches_per_txn(PageKind::Heap),
                2,
            ),
            Cell::FloatPrec(r.contentious_cs_per_txn(), 3),
        ]);
    }
    println!("{}", table.render());
}
