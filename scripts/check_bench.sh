#!/usr/bin/env bash
# Perf-regression gate: compare a fresh message-passing microbench run (and,
# optionally, a fresh observability-overhead run) against the committed
# baseline.  Thin wrapper so CI and developers invoke the same logic (the
# real comparison lives in `plp-bench`'s `check_bench` binary and is
# unit-tested there).
#
# usage: scripts/check_bench.sh [current.json] [baseline.json] [threshold] \
#        [obs-current.json] [server-current.json]
set -euo pipefail
cd "$(dirname "$0")/.."

current="${1:-bench_msgcost.json}"
baseline="${2:-BENCH_BASELINE.json}"
threshold="${3:-0.30}"
obs_current="${4:-}"
server_current="${5:-}"

if [[ ! -f "$current" ]]; then
  echo "check_bench.sh: $current not found — run:" >&2
  echo "  cargo run --release -p plp-bench --bin fig_msgcost -- --json $current" >&2
  exit 2
fi
if [[ -n "$obs_current" && ! -f "$obs_current" ]]; then
  echo "check_bench.sh: $obs_current not found — run:" >&2
  echo "  cargo run --release -p plp-bench --bin fig_obs -- --json $obs_current" >&2
  exit 2
fi
if [[ -n "$server_current" && ! -f "$server_current" ]]; then
  echo "check_bench.sh: $server_current not found — run:" >&2
  echo "  cargo run --release -p plp-bench --bin fig_server -- --json $server_current" >&2
  exit 2
fi

args=("$current" "$baseline" "$threshold")
if [[ -n "$obs_current" ]]; then
  args+=("$obs_current")
fi
if [[ -n "$server_current" ]]; then
  args+=("$server_current")
fi
exec cargo run --release -q -p plp-bench --bin check_bench -- "${args[@]}"
