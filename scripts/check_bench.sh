#!/usr/bin/env bash
# Perf-regression gate: compare a fresh message-passing microbench run
# against the committed baseline.  Thin wrapper so CI and developers invoke
# the same logic (the real comparison lives in `plp-bench`'s `check_bench`
# binary and is unit-tested there).
#
# usage: scripts/check_bench.sh [current.json] [baseline.json] [threshold]
set -euo pipefail
cd "$(dirname "$0")/.."

current="${1:-bench_msgcost.json}"
baseline="${2:-BENCH_BASELINE.json}"
threshold="${3:-0.30}"

if [[ ! -f "$current" ]]; then
  echo "check_bench.sh: $current not found — run:" >&2
  echo "  cargo run --release -p plp-bench --bin fig_msgcost -- --json $current" >&2
  exit 2
fi

exec cargo run --release -q -p plp-bench --bin check_bench -- \
  "$current" "$baseline" "$threshold"
