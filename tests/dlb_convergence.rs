//! Convergence of the dynamic load balancer under a shifting hotspot.
//!
//! A skewed workload concentrates 90% of its traffic on 5% of the key space;
//! mid-run the hot range jumps to a different part of the key space.  The
//! controller must (a) notice, (b) repartition so the hot range is spread
//! over more than one worker, and (c) never panic a worker while doing so —
//! controller-triggered repartitions race with live client threads here,
//! which is exactly what the dispatch gate has to make safe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use plp_core::{Design, DlbConfig, EngineConfig, TableId};
use plp_workloads::driver::prepare_engine;
use plp_workloads::micro::SkewedProbe;
use plp_workloads::skew::SkewKind;
use plp_workloads::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SUBSCRIBER: TableId = TableId(0);

/// How many partitions own a slice of `[hot_lo, hot_hi)`.
fn hot_range_spread(bounds: &[u64], hot_lo: u64, hot_hi: u64) -> usize {
    (0..bounds.len())
        .filter(|&i| {
            let lo = bounds[i];
            let hi = bounds.get(i + 1).copied().unwrap_or(u64::MAX);
            lo < hot_hi && hi > hot_lo
        })
        .count()
}

#[test]
fn shifting_hotspot_converges_without_panics() {
    let subscribers = 8_000u64;
    let partitions = 4usize;
    let workload = SkewedProbe::new(
        subscribers,
        SkewKind::HotSpot {
            fraction: 0.05,
            probability: 0.9,
        },
    );
    let mut dlb = DlbConfig::aggressive();
    // Tight intervals so the test converges in a couple hundred ms per phase.
    dlb.aging_interval = Duration::from_millis(10);
    dlb.min_repartition_gap = Duration::from_millis(40);
    dlb.min_samples = 64;
    let config = EngineConfig::new(Design::PlpRegular)
        .with_partitions(partitions)
        .with_dlb(dlb);
    let engine = prepare_engine(config, &workload);

    let stop = AtomicBool::new(false);
    let executed = AtomicU64::new(0);
    let shift_target = subscribers * 5 / 8;

    std::thread::scope(|scope| {
        let engine = &engine;
        let workload = &workload;
        let stop = &stop;
        let executed = &executed;
        for t in 0..partitions {
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(0xD1B + t as u64);
                let mut session = engine.session();
                while !stop.load(Ordering::Relaxed) {
                    let plan = workload.next_transaction(&mut rng);
                    // Any non-abort error (dead worker, shutdown) fails the
                    // test via panic in this thread.
                    match session.execute(plan) {
                        Ok(_) => {
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_abort() => {}
                        Err(e) => panic!("engine error during DLB convergence: {e}"),
                    }
                }
            });
        }
        scope.spawn(move || {
            let pm = engine.partition_manager().unwrap();
            let stats = || engine.db().stats().snapshot().dlb;
            // Poll until the controller has repartitioned at least
            // `min_repartitions` times *and* the current hot range is owned
            // by at least two workers.
            let converged = |min_repartitions: u64| -> bool {
                let s = stats();
                let (lo, hi) = workload.keys().hot_range();
                s.repartitions_triggered >= min_repartitions
                    && hot_range_spread(&pm.bounds(SUBSCRIBER), lo, hi) >= 2
            };
            let wait_for = |min_repartitions: u64| {
                let deadline = Instant::now() + Duration::from_secs(30);
                while !converged(min_repartitions) && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(20));
                }
            };

            // Phase 1: the controller adapts to the initial hotspot (it sits
            // inside worker 0's uniform slice).  On failure, stop the client
            // threads *before* panicking or the scope never joins.
            wait_for(1);
            let phase1 = stats();
            let (lo, hi) = workload.keys().hot_range();
            if !converged(1) {
                stop.store(true, Ordering::Relaxed);
                panic!(
                    "controller never spread the initial hot range [{lo}, {hi}): \
                     {:?} after {phase1:?}",
                    pm.bounds(SUBSCRIBER)
                );
            }

            // Phase 2: relocate the hotspot; the controller must chase it.
            let before_shift = phase1.repartitions_triggered;
            workload.shift_to(shift_target);
            wait_for(before_shift + 1);
            stop.store(true, Ordering::Relaxed);

            let final_stats = stats();
            let (lo, hi) = workload.keys().hot_range();
            assert!(
                converged(before_shift + 1),
                "controller never spread the moved hot range [{lo}, {hi}): \
                 {:?} after {final_stats:?}",
                pm.bounds(SUBSCRIBER)
            );
            assert_eq!(
                final_stats.repartitions_failed, 0,
                "no controller repartition may fail: {final_stats:?}"
            );
        });
    });

    assert!(
        executed.load(Ordering::Relaxed) > 1_000,
        "clients must have made progress throughout"
    );
    // The evaluation loop ran and recorded its imbalance observations.
    let dlb = engine.db().stats().snapshot().dlb;
    assert!(dlb.evaluations > 0);
    assert!(dlb.decay_rounds > 0);
    assert!(dlb.observed_imbalance >= 0.0);
}

#[test]
fn dlb_off_leaves_partitioning_alone() {
    let workload = SkewedProbe::new(
        2_000,
        SkewKind::HotSpot {
            fraction: 0.05,
            probability: 0.9,
        },
    );
    let config = EngineConfig::new(Design::PlpRegular).with_partitions(2);
    let engine = prepare_engine(config, &workload);
    let before = engine.partition_manager().unwrap().bounds(SUBSCRIBER);

    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut session = engine.session();
    for _ in 0..2_000 {
        let _ = session.execute(workload.next_transaction(&mut rng));
    }
    std::thread::sleep(Duration::from_millis(120));

    let stats = engine.db().stats().snapshot().dlb;
    assert_eq!(stats.repartitions_triggered, 0);
    assert_eq!(stats.evaluations, 0, "no controller thread when disabled");
    assert_eq!(
        engine.partition_manager().unwrap().bounds(SUBSCRIBER),
        before
    );
    assert!(engine.dlb().is_none());
}
