//! Cross-crate integration tests exercised through the benchmark harness:
//! the experiment functions must produce sane, paper-shaped results even at
//! tiny scales.

use plp_bench::Scale;

fn tiny() -> Scale {
    Scale {
        subscribers: 400,
        txns_per_thread: 60,
        max_threads: 2,
    }
}

#[test]
fn table1_matches_paper_shape() {
    let tables = plp_bench::table1_repartition_cost();
    let rendered = tables[0].render();
    // PLP-Regular moves nothing; Shared-Nothing rebuilds millions of entries.
    assert!(rendered.contains("PLP-Regular"));
    assert!(rendered.contains("Shared-Nothing"));
    assert!(rendered.contains("2.44M"));
}

#[test]
fn table2_sweep_is_monotone() {
    let tables = plp_bench::table2_cost_model();
    assert!(!tables[0].is_empty());
}

#[test]
fn fig1_plp_has_fewer_critical_sections_than_baseline() {
    let tables = plp_bench::fig1_critical_sections(tiny());
    let t = &tables[0];
    // Column 8 is the total CS/txn; row 0 is the baseline, last row is PLP-Leaf.
    let total = |row: &Vec<plp_instrument::Cell>| match &row[8] {
        plp_instrument::Cell::FloatPrec(v, _) => *v,
        _ => panic!("unexpected cell"),
    };
    let baseline = total(&t.rows[0]);
    let plp_leaf = total(t.rows.last().unwrap());
    assert!(
        plp_leaf < baseline * 0.6,
        "PLP-Leaf should cut total critical sections well below the baseline \
         (baseline {baseline:.1}, PLP-Leaf {plp_leaf:.1})"
    );
}

#[test]
fn fig3_plp_latches_are_a_small_fraction() {
    let tables = plp_bench::fig3_latches_by_design(tiny());
    let t = &tables[0];
    let pct = |row: &Vec<plp_instrument::Cell>| match &row[5] {
        plp_instrument::Cell::FloatPrec(v, _) => *v,
        _ => panic!("unexpected cell"),
    };
    // Conventional is the 100% baseline; PLP-Regular must cut page latching by
    // a large factor and PLP-Leaf further still (paper: -80% and ~-99%).
    assert!((pct(&t.rows[0]) - 100.0).abs() < 1e-6);
    let plp_regular = pct(&t.rows[2]);
    let plp_leaf = pct(&t.rows[3]);
    assert!(plp_regular < 45.0, "PLP-Regular at {plp_regular:.1}%");
    assert!(
        plp_leaf < plp_regular,
        "PLP-Leaf ({plp_leaf:.1}%) should be lowest"
    );
}

#[test]
fn fig11_fragmentation_orders_policies() {
    let tables = plp_bench::fig11_fragmentation(tiny());
    let t = &tables[0];
    for row in &t.rows {
        let v = |i: usize| match &row[i] {
            plp_instrument::Cell::FloatPrec(v, _) => *v,
            _ => panic!("unexpected cell"),
        };
        // Regular is the baseline (1.0); owned placements never use fewer pages.
        assert!((v(3) - 1.0).abs() < 1e-9);
        assert!(v(4) >= 1.0 - 1e-9);
        assert!(
            v(5) >= v(4) - 1e-9,
            "PLP-Leaf fragments at least as much as PLP-Partition"
        );
    }
}

#[test]
fn cost_model_and_live_slice_agree_on_sparseness() {
    // The analytical model says a PLP slice moves O(height × fanout) entries;
    // check the live MRBTree slice agrees within an order of magnitude.
    use plp_instrument::StatsRegistry;
    use plp_storage::{Access, BufferPool};
    let pool = BufferPool::new_shared(StatsRegistry::new_shared());
    let tree = plp_btree::MrbTree::create_uniform(pool, 170, 1, 1_000_000);
    for k in 0..30_000u64 {
        tree.insert(k * 33 % 1_000_000, k, Access::Latched).ok();
    }
    let report = tree.slice(500_000).unwrap();
    let height = tree.height_of(0) as usize;
    assert!(report.entries_moved <= 170 * (height + 1));
    assert!(report.pages_read <= height + 2);
}
