//! Property-based tests for the log-linear latency histogram.

use proptest::prelude::*;

use plp_instrument::histogram::{bucket_index, bucket_range};
use plp_instrument::Histogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reported quantile is the upper bound of the bucket holding the
    /// true rank-order sample: at least the true value, and no further above
    /// it than that bucket's width.
    #[test]
    fn quantile_brackets_true_value(
        values in prop::collection::vec(0u64..2_000_000, 1..400),
        pct in 1u64..=100,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let q = pct as f64 / 100.0;
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let true_value = sorted[rank - 1];
        let reported = h.quantile(q);
        let (lo, hi) = bucket_range(bucket_index(true_value));
        prop_assert!(reported >= true_value, "reported {reported} < true {true_value}");
        prop_assert_eq!(reported, hi, "true value in [{}, {}]", lo, hi);
    }

    /// Merging two histograms is indistinguishable from recording both
    /// sample sets into one histogram.
    #[test]
    fn merge_equals_bulk_recording(
        a in prop::collection::vec(0u64..10_000_000, 0..300),
        b in prop::collection::vec(0u64..10_000_000, 0..300),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let bulk = Histogram::new();
        for &v in &a {
            ha.record(v);
            bulk.record(v);
        }
        for &v in &b {
            hb.record(v);
            bulk.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.snapshot(), bulk.snapshot());
    }

    /// Concurrent recording from several threads loses no samples: the
    /// merged result has exactly the counts, sum and buckets of a serial
    /// recording of the same values.
    #[test]
    fn concurrent_recording_loses_no_counts(
        values in prop::collection::vec(0u64..5_000_000, 1..400),
        threads in 2usize..6,
    ) {
        let shared = Histogram::new();
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in values.chunks(chunk) {
                let shared = &shared;
                scope.spawn(move || {
                    for &v in part {
                        shared.record(v);
                    }
                });
            }
        });
        let serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        prop_assert_eq!(shared.snapshot(), serial.snapshot());
    }
}
