//! Property-based tests over the core data structures' invariants.

use proptest::prelude::*;

use plp_btree::{BTree, MrbTree};
use plp_instrument::StatsRegistry;
use plp_storage::{
    Access, BufferPool, HeapFile, Page, PlacementHint, PlacementPolicy, SlottedPage,
};
use std::collections::{BTreeMap, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The B+Tree behaves like a sorted map under arbitrary interleavings of
    /// inserts, deletes, updates and probes.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec((0u8..4, 0u64..500u64), 1..300), fanout in 4usize..32) {
        let pool = BufferPool::new_shared(StatsRegistry::new_shared());
        let tree = BTree::create(pool, fanout);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    let expected = !model.contains_key(&key);
                    let got = tree.insert(key, key * 2, Access::Latched).is_ok();
                    prop_assert_eq!(got, expected);
                    if expected { model.insert(key, key * 2); }
                }
                1 => {
                    let got = tree.delete(key, Access::Latched).unwrap();
                    prop_assert_eq!(got, model.remove(&key));
                }
                2 => {
                    let got = tree.update_value(key, key + 9, Access::Latched).unwrap();
                    prop_assert_eq!(got, model.contains_key(&key));
                    if got { model.insert(key, key + 9); }
                }
                _ => {
                    let got = tree.probe(key, Access::Latched).unwrap();
                    prop_assert_eq!(got, model.get(&key).copied());
                }
            }
        }
        tree.validate();
        prop_assert_eq!(tree.entry_count(), model.len());
        // Full iteration returns the model in order.
        let mut iterated = Vec::new();
        tree.for_each_entry(Access::Latched, |k, v| iterated.push((k, v))).unwrap();
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(iterated, expected);
    }

    /// Slicing and melding an MRBTree preserves its contents and range order.
    #[test]
    fn mrbtree_slice_meld_preserves_contents(
        keys in prop::collection::btree_set(0u64..10_000, 10..400),
        cut in 1u64..9_999,
        fanout in 6usize..48,
    ) {
        let pool = BufferPool::new_shared(StatsRegistry::new_shared());
        let tree = MrbTree::create_uniform(pool, fanout, 1, 10_000);
        for &k in &keys {
            tree.insert(k, k + 1, Access::Latched).unwrap();
        }
        if cut > 0 {
            tree.slice(cut).unwrap();
            tree.validate();
            prop_assert_eq!(tree.partition_count(), 2);
            for &k in &keys {
                prop_assert_eq!(tree.probe(k, Access::Latched).unwrap(), Some(k + 1));
            }
            tree.meld(1).unwrap();
            tree.validate();
            prop_assert_eq!(tree.partition_count(), 1);
        }
        for &k in &keys {
            prop_assert_eq!(tree.probe(k, Access::Latched).unwrap(), Some(k + 1));
        }
        prop_assert_eq!(tree.entry_count(), keys.len());
    }

    /// Slotted pages never lose or corrupt live records.
    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec((0u8..3, 0u16..24, 1usize..300), 1..120)) {
        let mut page = Page::new();
        SlottedPage::init(&mut page);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for (op, slot_hint, len) in ops {
            match op {
                0 => {
                    let payload = vec![(len % 251) as u8; len];
                    if let Some(slot) = SlottedPage::insert(&mut page, &payload) {
                        model.insert(slot, payload);
                    }
                }
                1 => {
                    if SlottedPage::delete(&mut page, slot_hint) {
                        prop_assert!(model.remove(&slot_hint).is_some());
                    } else {
                        prop_assert!(!model.contains_key(&slot_hint));
                    }
                }
                _ => {
                    let got = SlottedPage::get(&page, slot_hint).map(|r| r.to_vec());
                    prop_assert_eq!(got, model.get(&slot_hint).cloned());
                }
            }
        }
        prop_assert_eq!(SlottedPage::live_records(&page), model.len());
        for (slot, payload) in &model {
            prop_assert_eq!(SlottedPage::get(&page, *slot).unwrap(), &payload[..]);
        }
        // Compaction preserves everything.
        SlottedPage::compact(&mut page);
        for (slot, payload) in &model {
            prop_assert_eq!(SlottedPage::get(&page, *slot).unwrap(), &payload[..]);
        }
    }

    /// Heap files with owned placement never mix records of different owners
    /// on one page.
    #[test]
    fn heap_placement_invariant(records in prop::collection::vec((0u32..6, 8usize..600), 1..200)) {
        let pool = BufferPool::new_shared(StatsRegistry::new_shared());
        let heap = HeapFile::new(pool.clone(), PlacementPolicy::PartitionOwned);
        for (partition, len) in &records {
            let payload = vec![*partition as u8; *len];
            heap.insert(&payload, PlacementHint::Partition(*partition), Access::Latched).unwrap();
        }
        // Every page holds records of exactly one partition.
        for page_id in heap.page_ids() {
            let frame = pool.get(page_id).unwrap();
            frame.with_page(|p| {
                let owner = SlottedPage::partition_owner(p);
                for (_, rec) in SlottedPage::iter(p) {
                    assert!(rec.iter().all(|&b| b == owner as u8));
                }
            });
        }
        prop_assert_eq!(heap.live_records(), records.len());
    }

    /// Partition-bound computation keeps driver/child tables aligned.
    #[test]
    fn partition_bounds_align(space in 64u64..100_000, parts in 1usize..16, mult in 1u64..64) {
        let parent = plp_core::catalog::partition_bounds(space, parts, 1);
        let child = plp_core::catalog::partition_bounds(space * mult, parts, mult);
        prop_assert_eq!(parent.len(), child.len());
        for (p, c) in parent.iter().zip(&child) {
            prop_assert_eq!(p * mult, *c);
        }
        // Bounds are strictly increasing.
        prop_assert!(parent.windows(2).all(|w| w[0] < w[1]));
    }
}
