//! End-to-end wire-protocol tests: a live engine behind the TCP connection
//! server, driven by pipelined clients over real sockets.

use std::sync::Arc;

use plp_client::Connection;
use plp_core::{Design, Engine, EngineConfig, ErrorCode, Op, Response, TableId, TableSpec};
use plp_server::frame::{Frame, MIN_REMAINDER};
use plp_server::{Server, ServerConfig};

const KV: TableId = TableId(0);

/// A partitioned engine with a granularity-8 KV table behind a server.
fn serve() -> (Arc<Engine>, Server) {
    let schema = vec![TableSpec::new(0, "kv", 1 << 16).with_granularity(8)];
    let config = EngineConfig::new(Design::PlpRegular).with_partitions(2);
    let engine = Engine::start_shared(config, &schema);
    engine.finish_loading();
    let server = Server::serve(
        Arc::clone(&engine),
        ServerConfig::default().with_executors(3),
    )
    .expect("bind");
    (engine, server)
}

fn record(key: u64) -> Vec<u8> {
    let mut rec = vec![0u8; 32];
    rec[..8].copy_from_slice(&key.to_le_bytes());
    rec
}

#[test]
fn pipelined_requests_come_back_matched_by_id() {
    let (_engine, mut server) = serve();
    let mut conn = Connection::connect(server.addr()).expect("connect");

    // Pipeline 64 inserts without reading a single response.
    let mut pending: Vec<u64> = Vec::new();
    for key in 0..64u64 {
        let op = Op::Insert {
            table: KV,
            key,
            record: record(key),
            secondary_key: None,
        };
        pending.push(conn.send(&op).unwrap());
    }
    conn.flush().unwrap();
    // Responses arrive in whatever order the executor pool finished them;
    // every request id must be answered exactly once, successfully.
    let mut answered: Vec<u64> = Vec::new();
    for _ in 0..pending.len() {
        let (id, response) = conn.recv().expect("response");
        assert_eq!(
            response,
            Response::Ok(vec![plp_core::ActionOutput::empty()])
        );
        answered.push(id);
    }
    answered.sort_unstable();
    pending.sort_unstable();
    assert_eq!(answered, pending);

    // Read a few back through the same pipe.
    for key in [0u64, 13, 63] {
        match conn.call(&Op::Get { table: KV, key }).unwrap() {
            Response::Ok(outputs) => assert_eq!(outputs[0].rows, vec![record(key)]),
            other => panic!("get {key}: {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn every_op_kind_round_trips_over_the_wire() {
    let (_engine, mut server) = serve();
    let mut conn = Connection::connect(server.addr()).expect("connect");
    let ok = |response: Response| match response {
        Response::Ok(outputs) => outputs,
        Response::Err { code, message } => panic!("unexpected error {code}: {message}"),
    };

    for key in 40..48u64 {
        ok(conn
            .call(&Op::Insert {
                table: KV,
                key,
                record: record(key),
                secondary_key: None,
            })
            .unwrap());
    }
    // Update in place, read it back.
    let mut updated = record(44);
    updated[31] = 0xEE;
    let outputs = ok(conn
        .call(&Op::Update {
            table: KV,
            key: 44,
            record: updated.clone(),
        })
        .unwrap());
    assert_eq!(outputs[0].values, vec![1]);
    let outputs = ok(conn.call(&Op::Get { table: KV, key: 44 }).unwrap());
    assert_eq!(outputs[0].rows, vec![updated.clone()]);

    // Range over one granularity-8 unit: keys 40..=47, updated row included.
    let outputs = ok(conn
        .call(&Op::ReadRange {
            table: KV,
            lo: 40,
            hi: 47,
        })
        .unwrap());
    assert_eq!(outputs[0].values, (40..48).collect::<Vec<u64>>());
    assert_eq!(outputs[0].rows[4], updated);

    // Delete, then the row is gone.
    let outputs = ok(conn
        .call(&Op::Delete {
            table: KV,
            key: 41,
            secondary_key: None,
        })
        .unwrap());
    assert_eq!(outputs[0].values, vec![1]);
    let outputs = ok(conn.call(&Op::Get { table: KV, key: 41 }).unwrap());
    assert!(outputs[0].rows.is_empty());

    // Error paths: duplicate key, missing table, cross-unit range.
    let response = conn
        .call(&Op::Insert {
            table: KV,
            key: 40,
            record: record(40),
            secondary_key: None,
        })
        .unwrap();
    assert_eq!(response.error_code(), Some(ErrorCode::DuplicateKey));
    let response = conn
        .call(&Op::Get {
            table: TableId(9),
            key: 1,
        })
        .unwrap();
    assert_eq!(response.error_code(), Some(ErrorCode::NoSuchTable));
    let response = conn
        .call(&Op::ReadRange {
            table: KV,
            lo: 40,
            hi: 48,
        })
        .unwrap();
    assert_eq!(response.error_code(), Some(ErrorCode::BadRequest));
    server.stop();
}

#[test]
fn corrupt_frames_get_error_responses_without_losing_the_connection() {
    let (engine, mut server) = serve();
    let mut conn = Connection::connect(server.addr()).expect("connect");

    // A frame with a flipped CRC byte: rejected, request id preserved.
    let mut corrupt = Frame::request(7777, &Op::Get { table: KV, key: 1 }).encode();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    conn.send_bytes(&corrupt).unwrap();
    conn.flush().unwrap();
    let (id, response) = conn.recv().unwrap();
    assert_eq!(id, 7777);
    assert_eq!(response.error_code(), Some(ErrorCode::BadRequest));

    // An unknown opcode inside a well-formed frame: same, via to_op.
    let mut unknown = Frame::hello(501);
    unknown.opcode = 9;
    conn.send_frame(&unknown).unwrap();
    conn.flush().unwrap();
    let (id, response) = conn.recv().unwrap();
    assert_eq!(id, 501);
    assert_eq!(response.error_code(), Some(ErrorCode::BadRequest));

    // A runt frame (len below the header size): rejected without an id.
    let mut runt = 10u32.to_le_bytes().to_vec();
    runt.extend_from_slice(&[0u8; 10]);
    conn.send_bytes(&runt).unwrap();
    conn.flush().unwrap();
    let (id, response) = conn.recv().unwrap();
    assert_eq!(id, 0, "no salvageable request id");
    assert_eq!(response.error_code(), Some(ErrorCode::BadRequest));

    // The connection still works.
    let response = conn.call(&Op::Get { table: KV, key: 5 }).unwrap();
    assert!(response.is_ok());

    let snap = engine.db().stats().snapshot().server;
    assert_eq!(snap.decode_errors, 2, "crc + runt (unknown opcode decodes)");
    assert!(snap.frames_decoded >= 3, "hello + unknown + get");
    server.stop();
    let snap = engine.db().stats().snapshot().server;
    assert_eq!(snap.connections_accepted, 1);
    assert_eq!(snap.connections_closed, 1);
    assert_eq!(snap.active_connections(), 0);

    // Sanity: the wire's minimum-frame constant matches Frame::encode.
    assert_eq!(Frame::hello(0).encode().len(), MIN_REMAINDER + 4);
}

#[test]
fn many_connections_share_the_executor_pool() {
    let (engine, mut server) = serve();
    let addr = server.addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).expect("connect");
                // Disjoint key stripes per connection, pipelined depth 16.
                let base = 1_000 + t * 100;
                let mut pending = Vec::new();
                for key in base..base + 16 {
                    pending.push(
                        conn.send(&Op::Insert {
                            table: KV,
                            key,
                            record: record(key),
                            secondary_key: None,
                        })
                        .unwrap(),
                    );
                }
                conn.flush().unwrap();
                for _ in &pending {
                    let (_, response) = conn.recv().expect("response");
                    assert!(response.is_ok(), "{response:?}");
                }
                for key in base..base + 16 {
                    let response = conn.call(&Op::Get { table: KV, key }).unwrap();
                    match response {
                        Response::Ok(outputs) => assert_eq!(outputs[0].rows, vec![record(key)]),
                        other => panic!("{other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The in-process path stays fully usable next to the server.
    let mut session = engine.session();
    let response = session.run(plp_core::Request::single(Op::Get {
        table: KV,
        key: 1_000,
    }));
    match response {
        Response::Ok(outputs) => assert_eq!(outputs[0].rows, vec![record(1_000)]),
        other => panic!("{other:?}"),
    }
    server.stop();
    let snap = engine.db().stats().snapshot().server;
    assert_eq!(snap.connections_accepted, 4);
    assert_eq!(snap.active_connections(), 0);
    // Per connection: HelloAck + 16 insert + 16 get responses.
    assert!(snap.responses_sent >= 4 * 33, "{snap:?}");
}
