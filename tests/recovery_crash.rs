//! Crash-recovery integration tests.
//!
//! * A property test commits a batch of transactions under
//!   `DurabilityMode::Strict`, truncates the on-disk log at an arbitrary
//!   byte offset (the crash), recovers, and asserts that exactly the
//!   transactions whose commit record survived are visible — committed
//!   effects intact, no uncommitted effect resurrected.
//! * A deterministic kill-mid-workload test SIGKILLs a child process running
//!   a Strict workload (loads, a repartition, then an endless insert
//!   stream), recovers from its log directory, and checks every transaction
//!   the child reported as committed, plus identical partition boundaries.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use plp_core::{
    Action, ActionOutput, Design, Engine, EngineConfig, TableId, TableSpec, TransactionPlan,
};
use plp_wal::DurabilityMode;
use proptest::prelude::*;

const TABLE: TableId = TableId(0);
const KEY_SPACE: u64 = 1 << 20;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "plp-recovery-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn strict_config(dir: &Path) -> EngineConfig {
    EngineConfig::new(Design::PlpRegular)
        .with_partitions(2)
        .with_durability(DurabilityMode::Strict)
        .with_log_dir(dir)
        .with_log_segment_bytes(2048) // many small segments
}

fn schema() -> Vec<TableSpec> {
    vec![TableSpec::new(0, "rows", KEY_SPACE)]
}

fn value_for(key: u64) -> Vec<u8> {
    format!("value-{key}-{}", key.wrapping_mul(0x9E3779B97F4A7C15)).into_bytes()
}

fn read_key(engine: &Engine, key: u64) -> Option<Vec<u8>> {
    let mut session = engine.session();
    let out = session
        .execute(TransactionPlan::single(Action::new(
            TABLE,
            key,
            move |ctx| {
                let row = ctx.read(TABLE, key)?;
                Ok(ActionOutput::with_rows(row.into_iter().collect()))
            },
        )))
        .expect("recovered engine must serve reads");
    out.into_iter()
        .next()
        .and_then(|o| o.rows.into_iter().next())
}

/// Chop `bytes` off the end of the on-disk log: the last segment is
/// truncated; segments it swallows whole are deleted.
fn truncate_log_by(dir: &Path, mut bytes: u64) {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("seg"))
        .collect();
    segments.sort();
    while bytes > 0 {
        let Some(last) = segments.pop() else { return };
        let len = std::fs::metadata(&last).unwrap().len();
        if bytes >= len {
            std::fs::remove_file(&last).unwrap();
            bytes -= len;
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&last)
                .unwrap()
                .set_len(len - bytes)
                .unwrap();
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Truncate the log at a random byte offset: every transaction whose
    /// commit record survived must be fully visible after recovery, every
    /// other transaction must have left no trace.
    #[test]
    fn truncated_log_recovers_exactly_the_surviving_commits(
        n_txns in 15u64..45,
        cut in 1u64..6000,
    ) {
        let dir = temp_dir(&format!("prop-{n_txns}-{cut}"));
        let engine = Engine::start(strict_config(&dir), &schema());
        engine.finish_loading();
        {
            let mut session = engine.session();
            for i in 0..n_txns {
                let key = i * 7 + 1;
                let val = value_for(key);
                session
                    .execute(TransactionPlan::single(Action::new(TABLE, key, move |ctx| {
                        ctx.insert(TABLE, key, &val, None)?;
                        Ok(ActionOutput::empty())
                    })))
                    .unwrap();
            }
        }
        drop(engine); // Strict: every commit already fsynced.

        // The crash: the tail of the log vanishes mid-record.
        truncate_log_by(&dir, cut);

        // Ground truth from the surviving log.
        let scan = plp_wal::scan_log(&dir).unwrap();
        let committed: BTreeSet<u64> = scan.committed.iter().copied().collect();
        // Transactions committed in id order, so the survivors form a prefix.
        if let Some(&max) = committed.iter().max() {
            prop_assert_eq!(committed.len() as u64, max, "commit set must be a prefix");
        }
        prop_assert!(committed.len() as u64 <= n_txns);

        let (recovered, report) =
            Engine::recover(&dir, strict_config(&dir), &schema()).expect("recovery");
        prop_assert_eq!(report.committed_txns, committed.len() as u64);
        recovered.finish_loading();
        for i in 0..n_txns {
            let key = i * 7 + 1;
            let txn_id = i + 1; // single session ⇒ sequential ids from 1
            let visible = read_key(&recovered, key);
            if committed.contains(&txn_id) {
                prop_assert_eq!(
                    visible.as_deref(),
                    Some(value_for(key).as_slice()),
                    "committed txn {} (key {}) must survive", txn_id, key
                );
            } else {
                prop_assert_eq!(
                    visible, None,
                    "uncommitted txn {} (key {}) must leave no trace", txn_id, key
                );
            }
        }
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Deterministic kill-mid-workload test
// ---------------------------------------------------------------------------

const CHILD_DIR_ENV: &str = "PLP_RECOVERY_CRASH_DIR";
const CHILD_ORACLE_ENV: &str = "PLP_RECOVERY_CRASH_ORACLE";
const CHILD_LOADED_KEYS: u64 = 256;
const CHILD_BOUNDS: [u64; 2] = [0, 300_000];
const CHILD_INSERT_BASE: u64 = 500_000;

fn child_config(dir: &Path) -> EngineConfig {
    EngineConfig::new(Design::PlpRegular)
        .with_partitions(2)
        .with_durability(DurabilityMode::Strict)
        .with_log_dir(dir)
        .with_log_segment_bytes(32 * 1024)
        .with_checkpoint_interval(std::time::Duration::from_millis(25))
}

/// Child-process entry point.  A no-op unless the driver test re-invokes the
/// test binary with the env vars set; then it runs a Strict workload forever
/// (the parent SIGKILLs it) and reports each durable commit to the oracle
/// file *after* commit returns — so every oracle line is provably durable.
#[test]
fn recovery_crash_child() {
    use std::io::Write;
    let Ok(dir) = std::env::var(CHILD_DIR_ENV) else {
        return;
    };
    let oracle_path = std::env::var(CHILD_ORACLE_ENV).expect("oracle path");
    let mut oracle = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&oracle_path)
        .expect("open oracle");

    let engine = Engine::start(child_config(Path::new(&dir)), &schema());
    for k in 0..CHILD_LOADED_KEYS {
        engine
            .db()
            .load_record(TABLE, k, &value_for(k), None)
            .unwrap();
    }
    engine.finish_loading();
    engine.repartition(TABLE, &CHILD_BOUNDS).unwrap();
    // The repartition record rides ahead of the next strict commit in the
    // log, so once any later commit is durable the boundary change is too.
    writeln!(oracle, "BOUNDS {} {}", CHILD_BOUNDS[0], CHILD_BOUNDS[1]).unwrap();
    oracle.flush().unwrap();

    let mut session = engine.session();
    for i in 0..u64::MAX {
        let key = CHILD_INSERT_BASE + i;
        let val = value_for(key);
        session
            .execute(TransactionPlan::single(Action::new(
                TABLE,
                key,
                move |ctx| {
                    ctx.insert(TABLE, key, &val, None)?;
                    Ok(ActionOutput::empty())
                },
            )))
            .unwrap();
        // Only *after* the strict commit returned is the key reported.
        writeln!(oracle, "K {key}").unwrap();
        oracle.flush().unwrap();
    }
}

/// SIGKILL the child mid-workload, then recover its log directory: every
/// oracle-reported commit must be visible, partition boundaries identical,
/// and no uncommitted insert may survive.
#[test]
#[cfg(unix)]
fn sigkill_mid_workload_recovers_all_reported_commits() {
    use std::os::unix::process::ExitStatusExt;

    let dir = temp_dir("sigkill");
    std::fs::create_dir_all(&dir).unwrap();
    let oracle_path = dir.join("oracle.txt");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args([
            "recovery_crash_child",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_DIR_ENV, dir.join("wal"))
        .env(CHILD_ORACLE_ENV, &oracle_path)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    // Wait until the child has durably committed a healthy batch.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&oracle_path)
            .map(|s| s.lines().filter(|l| l.starts_with("K ")).count())
            .unwrap_or(0);
        if lines >= 40 {
            break;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("child never reached 40 commits (oracle at {lines})");
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child"); // SIGKILL: no destructors, no flush
    let status = child.wait().unwrap();
    assert_eq!(status.signal(), Some(9), "child must die by SIGKILL");

    // Parse the oracle: reported-durable keys and the repartition marker.
    let oracle = std::fs::read_to_string(&oracle_path).unwrap();
    let mut reported: Vec<u64> = Vec::new();
    let mut bounds_marker = None;
    for line in oracle.lines() {
        // A torn final line (killed mid-write) is fine — ignore it.
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("K") => {
                if let Some(Ok(k)) = parts.next().map(str::parse) {
                    reported.push(k);
                }
            }
            Some("BOUNDS") => {
                let lo = parts.next().and_then(|p| p.parse().ok());
                let hi = parts.next().and_then(|p| p.parse().ok());
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    bounds_marker = Some(vec![lo, hi]);
                }
            }
            _ => {}
        }
    }
    assert!(reported.len() >= 40);
    assert_eq!(bounds_marker, Some(CHILD_BOUNDS.to_vec()));

    // Recover.  The log almost certainly has a torn tail; that must be fine.
    let wal_dir = dir.join("wal");
    let scan = plp_wal::scan_log(&wal_dir).unwrap();
    let (recovered, report) =
        Engine::recover(&wal_dir, child_config(&wal_dir), &schema()).expect("recovery");
    recovered.finish_loading();

    // Identical routing: the pre-crash repartition is restored.
    assert_eq!(
        recovered.partition_manager().unwrap().bounds(TABLE),
        CHILD_BOUNDS.to_vec(),
        "recovered engine must route identically to the pre-crash one"
    );

    // Every loaded record and every reported commit is intact.
    for k in (0..CHILD_LOADED_KEYS).step_by(17) {
        assert_eq!(
            read_key(&recovered, k).as_deref(),
            Some(value_for(k).as_slice())
        );
    }
    for &k in &reported {
        assert_eq!(
            read_key(&recovered, k).as_deref(),
            Some(value_for(k).as_slice()),
            "reported-durable key {k} must survive the SIGKILL"
        );
    }

    // No uncommitted effect: any insert logged without a surviving commit
    // record must be invisible, and untouched keys stay absent.
    for record in &scan.records {
        if record.kind == plp_wal::LogRecordKind::Insert
            && record.txn_id != 0
            && !scan.committed.contains(&record.txn_id)
        {
            assert_eq!(
                read_key(&recovered, record.page),
                None,
                "loser txn {} left key {} behind",
                record.txn_id,
                record.page
            );
        }
    }
    let never_written = CHILD_INSERT_BASE + reported.len() as u64 + 10_000;
    assert_eq!(read_key(&recovered, never_written), None);
    assert!(report.committed_txns >= reported.len() as u64);

    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
