//! Workspace maintenance tasks.
//!
//! `cargo run -p xtask -- lint` walks the workspace sources and enforces the
//! concurrency-hygiene rules that rustc/clippy cannot express:
//!
//! 1. **SAFETY comments** — every `unsafe` block, fn or impl must be
//!    directly preceded (through attributes, blanks and the rest of its
//!    comment block) by a comment containing `SAFETY:` explaining why the
//!    contract holds.  Chained `unsafe impl` lines may share one comment.
//! 2. **Memory-ordering allowlist** — `Ordering::Relaxed`, `Acquire`,
//!    `Release` and `AcqRel` are only permitted in modules on the allowlist
//!    below, each with a recorded reason (typically: the module is
//!    model-checked, or the atomic is a counter with no cross-thread
//!    ordering obligation).  `SeqCst` is always allowed — it is never the
//!    *subtle* choice.  New weak orderings elsewhere fail CI until the
//!    module is reviewed and listed.
//! 3. **Crate-root attributes** — crates whose sources contain no `unsafe`
//!    must carry `#![forbid(unsafe_code)]`; crates that do use `unsafe`
//!    must carry `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Directories named `tests` are skipped: the rules protect production
//! code, and test-only atomics/counters would drown the allowlist.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Modules allowed to use weak (non-SeqCst) memory orderings, with the
/// reason each earned its entry.  Paths are workspace-relative prefixes.
const ORDERING_ALLOWLIST: &[(&str, &str)] = &[
    (
        "shims/loom/src/",
        "the model checker itself implements the C11 visibility rules",
    ),
    (
        "shims/crossbeam/src/",
        "model-checked lock-free channels (docs/concurrency.md)",
    ),
    (
        "crates/core/src/reply.rs",
        "model-checked reply rendezvous (docs/concurrency.md)",
    ),
    (
        "crates/core/src/engine.rs",
        "relaxed fetch_add allocating unique agent ids; uniqueness needs atomicity only",
    ),
    (
        "crates/core/src/partition.rs",
        "failure-injection knob read and written on the same worker thread",
    ),
    (
        "crates/core/src/dlb/histogram.rs",
        "relaxed access counters, aggregated only after a quiesce barrier",
    ),
    (
        "crates/instrument/src/",
        "monotonic stat counters; snapshots tolerate torn cross-counter reads",
    ),
    (
        "crates/storage/src/frame.rs",
        "page-latch protocol; Acquire/Release pairing argued in-module",
    ),
    (
        "crates/storage/src/bufferpool.rs",
        "relaxed fetch_add allocating unique page ids",
    ),
    (
        "crates/wal/src/manager.rs",
        "flusher shutdown flag (Acquire/Release) and a relaxed LSN stat counter",
    ),
    (
        "crates/txn/src/manager.rs",
        "relaxed fetch_add allocating unique txn ids",
    ),
    (
        "crates/workloads/src/",
        "driver stat counters and the skew-shift offset cell (Acquire/Release pair)",
    ),
];

const WEAK_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `cargo run -p xtask -- lint`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no task given (try `cargo run -p xtask -- lint`)");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "shims", "src", "xtask"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .expect("walked file is under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                violations.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        let code = strip_comments_and_strings(&text);
        check_safety_comments(&rel, &text, &code, &mut violations);
        check_ordering_allowlist(&rel, &code, &mut violations);
    }
    check_crate_roots(&root, &files, &mut violations);

    if violations.is_empty() {
        println!(
            "xtask lint: ok ({} files; SAFETY comments, ordering allowlist, crate-root attrs)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("xtask lint: {v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `tests` directories hold integration tests; `target` holds
            // build output.  Neither is lint territory.
            if name != "tests" && name != "target" {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Replace comments and string/char-literal contents with spaces, keeping
/// line structure intact so reported line numbers match the source.
fn strip_comments_and_strings(text: &str) -> String {
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(text.len());
    let b: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match (c, next) {
                ('/', Some('/')) => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                ('/', Some('*')) => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                ('"', _) => {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                }
                ('r', Some('"')) | ('r', Some('#')) => {
                    // Raw string: count the hashes.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                ('\'', _) => {
                    // Char literal vs lifetime: a closing quote within a few
                    // chars (allowing escapes) means literal.
                    let is_char = b.get(i + 1) == Some(&'\\')
                        || (b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\''));
                    if is_char {
                        st = St::Char;
                    }
                    out.push(c);
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => match (c, next) {
                ('*', Some('/')) => {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                }
                ('/', Some('*')) => {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            St::Str => match (c, next) {
                ('\\', Some(_)) => {
                    out.push_str("  ");
                    i += 2;
                }
                ('"', _) => {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
                    st = St::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i = i + 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Char => {
                if c == '\'' {
                    st = St::Code;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }
    out
}

/// Does `code` contain `unsafe` as a standalone token (not `unsafe_code`
/// etc.)?
fn has_unsafe_token(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + 6..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + 6..];
    }
    false
}

fn is_comment_or_skippable(trimmed: &str) -> bool {
    trimmed.is_empty()
        || trimmed.starts_with("//")
        || trimmed.starts_with("#[")
        || trimmed.starts_with("#![")
        || trimmed.starts_with("/*")
        || trimmed.starts_with('*')
}

/// Rule 1: every line whose *code* contains an `unsafe` token must carry or
/// be preceded by a `SAFETY:` comment (scanning upward through the rest of
/// its comment/attribute block, and through chained `unsafe impl` lines).
fn check_safety_comments(rel: &str, text: &str, code: &str, violations: &mut Vec<String>) {
    let src_lines: Vec<&str> = text.lines().collect();
    let code_lines: Vec<&str> = code.lines().collect();
    for (idx, code_line) in code_lines.iter().enumerate() {
        if !has_unsafe_token(code_line) {
            continue;
        }
        // Attribute lines (`#![deny(unsafe_op_in_unsafe_fn)]` &co) never
        // need a SAFETY comment; the token check already skips most, but be
        // explicit.
        if src_lines[idx].trim_start().starts_with('#') {
            continue;
        }
        if src_lines[idx].contains("SAFETY:") {
            continue;
        }
        let mut ok = false;
        for j in (0..idx).rev() {
            let trimmed = src_lines[j].trim_start();
            // `SAFETY:` comments justify unsafe *blocks*; an `unsafe fn`'s
            // contract conventionally lives in a `# Safety` doc section.
            if trimmed.starts_with("//")
                && (trimmed.contains("SAFETY:") || trimmed.contains("# Safety"))
            {
                ok = true;
                break;
            }
            if is_comment_or_skippable(trimmed) {
                continue;
            }
            // A chained `unsafe impl` shares the comment above the chain.
            if has_unsafe_token(code_lines[j]) && trimmed.starts_with("unsafe impl") {
                continue;
            }
            break;
        }
        if !ok {
            violations.push(format!(
                "{rel}:{}: `unsafe` without a preceding `// SAFETY:` comment",
                idx + 1
            ));
        }
    }
}

/// Rule 2: weak orderings only in allowlisted modules.
fn check_ordering_allowlist(rel: &str, code: &str, violations: &mut Vec<String>) {
    let allowed = ORDERING_ALLOWLIST.iter().any(|(p, _)| rel.starts_with(p));
    if allowed {
        return;
    }
    for (idx, line) in code.lines().enumerate() {
        for ord in WEAK_ORDERINGS {
            if line.contains(ord) {
                violations.push(format!(
                    "{rel}:{}: {ord} outside the ordering allowlist — either use SeqCst \
                     or review the module and add it to ORDERING_ALLOWLIST in xtask \
                     with a reason",
                    idx + 1
                ));
            }
        }
    }
}

/// Rule 3: crate roots carry `#![forbid(unsafe_code)]` when the crate is
/// unsafe-free, `#![deny(unsafe_op_in_unsafe_fn)]` when it is not.
fn check_crate_roots(root: &Path, files: &[PathBuf], violations: &mut Vec<String>) {
    let roots: Vec<PathBuf> = files
        .iter()
        .filter(|p| {
            let rel = p.strip_prefix(root).expect("under root");
            let s = rel.to_string_lossy().replace('\\', "/");
            s == "src/lib.rs"
                || s == "xtask/src/main.rs"
                || (s.ends_with("/src/lib.rs")
                    && (s.starts_with("crates/") || s.starts_with("shims/")))
        })
        .cloned()
        .collect();
    for crate_root in roots {
        let rel = crate_root
            .strip_prefix(root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let src_dir = crate_root.parent().expect("crate root has a src dir");
        let crate_uses_unsafe = files.iter().filter(|p| p.starts_with(src_dir)).any(|p| {
            std::fs::read_to_string(p)
                .map(|t| has_unsafe_token(&strip_comments_and_strings(&t)))
                .unwrap_or(false)
        });
        let text = std::fs::read_to_string(&crate_root).unwrap_or_default();
        if crate_uses_unsafe {
            if !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
                violations.push(format!(
                    "{rel}: crate uses `unsafe` but the root lacks \
                     `#![deny(unsafe_op_in_unsafe_fn)]`"
                ));
            }
        } else if !text.contains("#![forbid(unsafe_code)]") {
            violations.push(format!(
                "{rel}: crate is unsafe-free but the root lacks `#![forbid(unsafe_code)]`"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings() {
        let s = strip_comments_and_strings(
            "let x = \"unsafe\"; // unsafe in a comment\nlet y = 1; /* Ordering::Relaxed */\n",
        );
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("Relaxed"));
        assert!(s.contains("let y = 1;"));
        // Line structure is preserved.
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn stripper_keeps_code_outside_literals() {
        let s = strip_comments_and_strings("unsafe { foo(\"bar\") } // tail\n");
        assert!(has_unsafe_token(&s));
        assert!(!s.contains("bar"));
        assert!(!s.contains("tail"));
    }

    #[test]
    fn stripper_handles_lifetimes_and_chars() {
        let s = strip_comments_and_strings("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert!(s.contains("fn f<'a>(x: &'a str) -> char"));
        assert!(!s.contains('y'));
    }

    #[test]
    fn unsafe_token_respects_word_boundaries() {
        assert!(has_unsafe_token("unsafe impl Send for X {}"));
        assert!(has_unsafe_token("let _ = unsafe { p.read() };"));
        assert!(!has_unsafe_token("forbid(unsafe_code)"));
        assert!(!has_unsafe_token("deny(unsafe_op_in_unsafe_fn)"));
        assert!(!has_unsafe_token("fn not_unsafe_here() {}"));
    }

    #[test]
    fn safety_rule_accepts_commented_and_chained_unsafe() {
        let text = "\
// SAFETY: both impls hold because T: Send.
unsafe impl<T: Send> Send for X<T> {}
unsafe impl<T: Send> Sync for X<T> {}

fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
";
        let code = strip_comments_and_strings(text);
        let mut v = Vec::new();
        check_safety_comments("x.rs", text, &code, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_rule_rejects_bare_unsafe() {
        let text = "fn f(p: *const u8) -> u8 {\n    // reads p\n    unsafe { *p }\n}\n";
        let code = strip_comments_and_strings(text);
        let mut v = Vec::new();
        check_safety_comments("x.rs", text, &code, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("x.rs:3"));
    }

    #[test]
    fn ordering_rule_flags_unlisted_files_only() {
        let code = "a.load(Ordering::Relaxed); b.load(Ordering::SeqCst);";
        let mut v = Vec::new();
        check_ordering_allowlist("crates/foo/src/lib.rs", code, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        v.clear();
        check_ordering_allowlist("crates/instrument/src/stats.rs", code, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn lint_passes_on_this_workspace() {
        assert_eq!(lint(), ExitCode::SUCCESS);
    }
}
